// Tests for the protocol verifier (src/verify) and the stats-reset audit.
//
// The negative paths deliberately misuse the API — rank-divergent
// collectives, a truncated receive, requests leaked at finalize, a wildcard
// race — and assert that the *exact* VerifyReport categories fire, with
// rank/call-site provenance in the rendered report.  The clean-run test
// pins the observer guarantee: with no findings, a verify-on run traces
// byte-identically to a verify-off run.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "verify/verify.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::usec;
using verify::Category;

/// A verify-enabled harness: P compute nodes, one rank per node (so
/// cross-node divergence reaches the verifier instead of the same-node
/// mismatch throw in BR pre-processing), tracing on.
struct Harness {
  explicit Harness(int P, std::uint64_t seed = 42) : num_ranks(P) {
    net::ClusterConfig ccfg;
    ccfg.num_compute_nodes = P;
    ccfg.seed = seed;
    cluster = std::make_unique<net::Cluster>(ccfg);
    cluster->trace().enable();
    bcsmpi::BcsMpiConfig cfg;
    cfg.runtime_init_overhead = usec(50);
    cfg.verify = true;
    runtime = std::make_unique<bcsmpi::Runtime>(*cluster, cfg);
  }

  void launch(const std::function<void(mpi::Comm&)>& body) {
    std::vector<int> map(num_ranks);
    std::iota(map.begin(), map.end(), 0);
    bcsmpi::launchJob(*runtime, map, body);
  }

  /// Runs to completion (or `until` for deadlocking workloads) and returns
  /// the finalized report.
  const verify::VerifyReport& report(sim::SimTime until = INT64_MAX) {
    cluster->run(until);
    const verify::VerifyReport* r = runtime->verifyAudit();
    EXPECT_NE(r, nullptr);
    return *r;
  }

  int num_ranks;
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<bcsmpi::Runtime> runtime;
};

// ---------------------------------------------------------------------------
// Negative paths: each misuse fires its exact category
// ---------------------------------------------------------------------------

TEST(Verify, DivergentCollectiveOpIsReported) {
  Harness h(4);
  // Same generation, same type/count/datatype — but rank 0 reduces with
  // kSum while everyone else uses kMax.  Per-node state never sees the
  // conflict (one rank per node); only the verifier's slice-boundary color
  // reduction can.
  h.launch([](mpi::Comm& comm) {
    const auto op = comm.rank() == 0 ? mpi::ReduceOp::kSum : mpi::ReduceOp::kMax;
    comm.allreduceOne(1.0, op);
  });
  const auto& rep = h.report(msec(100));
  EXPECT_GE(rep.count(Category::kCollectiveDivergence), 1u);
  EXPECT_TRUE(rep.finalized);
  // Provenance: the rendered report names a divergent rank and the
  // operation signature.
  const std::string text = rep.render();
  EXPECT_NE(text.find("collective-divergence"), std::string::npos) << text;
  EXPECT_NE(text.find("rank"), std::string::npos) << text;
  EXPECT_NE(text.find("allreduce"), std::string::npos) << text;
}

TEST(Verify, DivergentCollectiveCountIsReported) {
  Harness h(4);
  h.launch([](mpi::Comm& comm) {
    // Rank 2 contributes 8 elements, everyone else 4.
    std::vector<double> contrib(comm.rank() == 2 ? 8 : 4, 1.0);
    std::vector<double> result(contrib.size());
    comm.allreduce(contrib.data(), result.data(), contrib.size(),
                   mpi::Datatype::kFloat64, mpi::ReduceOp::kSum);
  });
  const auto& rep = h.report(msec(100));
  EXPECT_GE(rep.count(Category::kCollectiveDivergence), 1u);
  const std::string text = rep.render();
  EXPECT_NE(text.find("count=8"), std::string::npos) << text;
  EXPECT_NE(text.find("count=4"), std::string::npos) << text;
}

TEST(Verify, MissingParticipantIsReportedAtFinalize) {
  Harness h(4);
  // Rank 3 skips the second barrier: generation 1 can never complete, the
  // other three ranks deadlock in it, and the finalize audit must flag the
  // incomplete color group as a divergence.
  h.launch([](mpi::Comm& comm) {
    comm.barrier();
    if (comm.rank() != 3) comm.barrier();
  });
  h.cluster->run(msec(20));
  EXPECT_FALSE(h.cluster->allProcessesFinished());  // it really deadlocked
  const verify::VerifyReport* rep = h.runtime->verifyAudit();
  ASSERT_NE(rep, nullptr);
  EXPECT_GE(rep->count(Category::kCollectiveDivergence), 1u);
  const std::string text = rep->render();
  EXPECT_NE(text.find("3/4"), std::string::npos) << text;
}

TEST(Verify, TruncatedRecvIsReported) {
  Harness h(2);
  h.launch([](mpi::Comm& comm) {
    std::vector<std::uint8_t> buf(1024);
    if (comm.rank() == 0) {
      auto r = comm.isend(buf.data(), 1024, 1, 0);
      comm.wait(r);
    } else {
      // Posts only 256B for the 1024B message: the runtime throws on the
      // match (historical behavior, unchanged), but the verifier records
      // the finding first, so the report survives the unwound run.
      auto r = comm.irecv(buf.data(), 256, 0, 0);
      comm.wait(r);
    }
  });
  EXPECT_THROW(h.cluster->run(), sim::SimError);
  const verify::VerifyReport* rep = h.runtime->verifyAudit();
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->count(Category::kTruncatedRecv), 1u);
  const std::string text = rep->render();
  EXPECT_NE(text.find("truncated-recv"), std::string::npos) << text;
  EXPECT_NE(text.find("1024"), std::string::npos) << text;
  EXPECT_NE(text.find("256"), std::string::npos) << text;
}

TEST(Verify, WildcardRaceIsReported) {
  Harness h(3);
  h.launch([](mpi::Comm& comm) {
    std::vector<std::uint8_t> buf(512);
    if (comm.rank() == 0) {
      // Let both senders' descriptors arrive first, then receive from
      // kAnySource: the first match happens while two distinct sources are
      // eligible — the classic replay-determinism hazard.
      comm.compute(msec(3));
      auto r1 = comm.irecv(buf.data(), buf.size(), mpi::kAnySource, 7);
      comm.wait(r1);
      auto r2 = comm.irecv(buf.data(), buf.size(), mpi::kAnySource, 7);
      comm.wait(r2);
    } else {
      auto r = comm.isend(buf.data(), buf.size(), 0, 7);
      comm.wait(r);
    }
  });
  const auto& rep = h.report();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  EXPECT_GE(rep.count(Category::kWildcardRace), 1u);
  const std::string text = rep.render();
  EXPECT_NE(text.find("wildcard-race"), std::string::npos) << text;
}

TEST(Verify, ConcreteSourceRecvIsNotARace) {
  // The same shape with concrete source ranks must stay clean: the hazard
  // is the wildcard, not having several senders.
  Harness h(3);
  h.launch([](mpi::Comm& comm) {
    std::vector<std::uint8_t> buf(512);
    if (comm.rank() == 0) {
      comm.compute(msec(3));
      auto r1 = comm.irecv(buf.data(), buf.size(), 1, 7);
      auto r2 = comm.irecv(buf.data(), buf.size(), 2, 7);
      comm.wait(r1);
      comm.wait(r2);
    } else {
      auto r = comm.isend(buf.data(), buf.size(), 0, 7);
      comm.wait(r);
    }
  });
  const auto& rep = h.report();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  EXPECT_TRUE(rep.clean()) << rep.render();
}

TEST(Verify, LeakedRequestAtFinalizeIsReported) {
  Harness h(2);
  h.launch([](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      static std::vector<std::uint8_t> buf(256);  // outlives the rank
      (void)comm.isend(buf.data(), buf.size(), 1, 0);
      // Exits without waiting; rank 1 never posts the receive.
    }
  });
  const auto& rep = h.report();
  EXPECT_GE(rep.count(Category::kUnfinishedRequest), 1u);
  EXPECT_GE(rep.count(Category::kLeakedDescriptor), 1u);
  const std::string text = rep.render();
  EXPECT_NE(text.find("never completed"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// The observer guarantee: clean runs are byte-identical with verify on/off
// ---------------------------------------------------------------------------

std::string cleanRunTrace(bool verify_on) {
  const int P = 4;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 1234;
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  cfg.verify = verify_on;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    const int right = (me + 1) % P;
    const int left = (me + P - 1) % P;
    std::vector<std::uint8_t> out(2048), in(2048);
    for (int round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>((i * 3 + me + round) & 0xFF);
      }
      auto sreq = comm.isend(out.data(), out.size(), right, round);
      auto rreq = comm.irecv(in.data(), in.size(), left, round);
      comm.wait(sreq);
      comm.wait(rreq);
      comm.allreduceOne(static_cast<std::int64_t>(round), mpi::ReduceOp::kSum);
    }
  });
  cluster.run();

  if (verify_on) {
    // The run was clean, so the verifier must have nothing to say — and
    // must actually have been watching.
    const verify::VerifyReport* rep = runtime->verifyAudit();
    EXPECT_NE(rep, nullptr);
    EXPECT_TRUE(rep->clean()) << rep->render();
    EXPECT_TRUE(rep->finalized);
    EXPECT_GT(rep->collectives_checked, 0u);
    EXPECT_GT(rep->matches_checked, 0u);
  }
  return cluster.trace().dump();
}

TEST(Verify, CleanRunTracesAreByteIdenticalWithVerifierOnOrOff) {
  const std::string off = cleanRunTrace(false);
  const std::string on = cleanRunTrace(true);
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, on);
}

TEST(Verify, VerifyAuditIsNullWithoutVerifier) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;  // verify defaults to false
  bcsmpi::Runtime runtime(cluster, cfg);
  EXPECT_EQ(runtime.verifyAudit(), nullptr);
}

// ---------------------------------------------------------------------------
// Report mechanics: retention cap, category names
// ---------------------------------------------------------------------------

TEST(Verify, FindingCapKeepsCountsExact) {
  verify::Verifier v(nullptr, /*max_findings=*/2);
  for (int i = 0; i < 5; ++i) {
    v.addFinding(Category::kLeakedDescriptor, usec(i), 0, 0, 0, i,
                 "finding " + std::to_string(i));
  }
  v.finalizeAudit(usec(10), 1);
  const verify::VerifyReport& rep = v.report();
  EXPECT_EQ(rep.count(Category::kLeakedDescriptor), 5u);  // counters exact
  EXPECT_EQ(rep.findings.size(), 2u);                     // retention capped
  EXPECT_EQ(rep.dropped_findings, 3u);
  EXPECT_NE(rep.render().find("+3 finding(s) beyond the retention cap"),
            std::string::npos)
      << rep.render();
}

TEST(Verify, CategoryNamesAreStable) {
  EXPECT_STREQ(verify::categoryName(Category::kCollectiveDivergence),
               "collective-divergence");
  EXPECT_STREQ(verify::categoryName(Category::kTruncatedRecv),
               "truncated-recv");
  EXPECT_STREQ(verify::categoryName(Category::kWildcardRace),
               "wildcard-race");
  EXPECT_STREQ(verify::categoryName(Category::kLeakedDescriptor),
               "leaked-descriptor");
  EXPECT_STREQ(verify::categoryName(Category::kUnfinishedRequest),
               "unfinished-request");
  EXPECT_STREQ(verify::categoryName(Category::kOrphanedRetransmit),
               "orphaned-retransmit");
}

// ---------------------------------------------------------------------------
// Stats audit: every stats struct exposes a zeroing reset()
// ---------------------------------------------------------------------------

TEST(StatsReset, RuntimeStatsResetZeroesEveryCounter) {
  bcsmpi::RuntimeStats s;
  s.slices = 7;
  s.microstrobes = 21;
  s.descriptors_exchanged = 4;
  s.matches = 3;
  s.retransmits = 2;
  s.evictions = 1;
  s.rejoins = 1;
  s.reset();
  EXPECT_EQ(s.slices, 0u);
  EXPECT_EQ(s.microstrobes, 0u);
  EXPECT_EQ(s.descriptors_exchanged, 0u);
  EXPECT_EQ(s.matches, 0u);
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.rejoins, 0u);
}

TEST(StatsReset, FabricStatsResetZeroesEveryCounter) {
  net::FabricStats s;
  s.unicasts = 5;
  s.multicasts = 4;
  s.conditionals = 3;
  s.payload_bytes = 1 << 20;
  s.drops = 2;
  s.failed_sends = 1;
  s.reset();
  EXPECT_EQ(s.unicasts, 0u);
  EXPECT_EQ(s.multicasts, 0u);
  EXPECT_EQ(s.conditionals, 0u);
  EXPECT_EQ(s.payload_bytes, 0u);
  EXPECT_EQ(s.drops, 0u);
  EXPECT_EQ(s.failed_sends, 0u);
}

TEST(StatsReset, FaultStatsResetZeroesEveryCounter) {
  sim::FaultStats s;
  s.drops = 3;
  s.degrades = 2;
  s.forced_down = 1;
  s.reset();
  EXPECT_EQ(s.drops, 0u);
  EXPECT_EQ(s.degrades, 0u);
  EXPECT_EQ(s.forced_down, 0u);
}

TEST(StatsReset, EngineResetStatsKeepsQueueOccupancy) {
  sim::Engine engine;
  int fired = 0;
  engine.at(usec(1), [&] { ++fired; });
  engine.at(usec(2), [&] { ++fired; });
  engine.at(usec(100), [&] { ++fired; });  // stays pending
  engine.run(usec(10));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.executedEvents(), 2u);
  EXPECT_EQ(engine.pendingEvents(), 1u);
  engine.resetStats();
  EXPECT_EQ(engine.executedEvents(), 0u);
  EXPECT_EQ(engine.cancelledEvents(), 0u);
  EXPECT_EQ(engine.droppedTombstones(), 0u);
  // The live-event count is queue occupancy, not a statistic.
  EXPECT_EQ(engine.pendingEvents(), 1u);
}

}  // namespace
