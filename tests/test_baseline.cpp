// Integration tests for the Quadrics-MPI-style baseline implementation:
// point-to-point correctness (eager + rendezvous), matching semantics,
// non-blocking ops, and collectives.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "baseline/baseline.hpp"
#include "mpi/comm.hpp"
#include "net/cluster.hpp"

namespace {

using namespace bcs;
using baseline::BaselineConfig;
using baseline::blockMapping;
using baseline::runJob;
using mpi::Comm;
using sim::msec;
using sim::usec;

net::ClusterConfig smallCluster(int nodes = 8) {
  net::ClusterConfig cfg;
  cfg.num_compute_nodes = nodes;
  return cfg;
}

BaselineConfig fastInit() {
  BaselineConfig cfg;
  cfg.init_overhead = usec(10);  // keep unit tests snappy
  return cfg;
}

TEST(Baseline, PingPongDeliversPayload) {
  net::Cluster cluster(smallCluster());
  std::vector<int> received;
  runJob(cluster, fastInit(), blockMapping(2, 8, 1), [&](Comm& comm) {
    std::vector<int> buf(256);
    if (comm.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 100);
      comm.sendv<int>(buf, 1, /*tag=*/7);
    } else {
      comm.recvv<int>(buf, 0, 7);
      received = buf;
    }
  });
  ASSERT_EQ(received.size(), 256u);
  EXPECT_EQ(received[0], 100);
  EXPECT_EQ(received[255], 355);
}

TEST(Baseline, LargeMessageUsesRendezvousAndArrivesIntact) {
  net::Cluster cluster(smallCluster());
  const std::size_t n = 1 << 18;  // 1 MiB of ints: rendezvous path
  bool ok = false;
  runJob(cluster, fastInit(), blockMapping(2, 8, 1), [&](Comm& comm) {
    std::vector<int> buf(n);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < n; ++i) buf[i] = static_cast<int>(i * 3);
      comm.sendv<int>(buf, 1, 0);
    } else {
      comm.recvv<int>(buf, 0, 0);
      ok = true;
      for (std::size_t i = 0; i < n; ++i) {
        if (buf[i] != static_cast<int>(i * 3)) {
          ok = false;
          break;
        }
      }
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Baseline, UnexpectedMessagesBufferUntilReceivePosted) {
  net::Cluster cluster(smallCluster());
  int got = 0;
  runJob(cluster, fastInit(), blockMapping(2, 8, 1), [&](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 41;
      comm.send(&v, sizeof v, 1, 5);
    } else {
      comm.compute(msec(5));  // message arrives long before the recv
      int v = 0;
      comm.recv(&v, sizeof v, 0, 5);
      got = v + 1;
    }
  });
  EXPECT_EQ(got, 42);
}

TEST(Baseline, TagAndSourceSelectivity) {
  net::Cluster cluster(smallCluster());
  std::vector<int> order;
  runJob(cluster, fastInit(), blockMapping(3, 8, 1), [&](Comm& comm) {
    if (comm.rank() == 1) {
      const int v = 111;
      comm.compute(usec(300));
      comm.send(&v, sizeof v, 0, /*tag=*/1);
    } else if (comm.rank() == 2) {
      const int v = 222;
      comm.send(&v, sizeof v, 0, /*tag=*/2);
    } else {
      int a = 0, b = 0;
      // Tag 1 from rank 1 first even though rank 2's message arrives first.
      comm.recv(&a, sizeof a, 1, 1);
      order.push_back(a);
      comm.recv(&b, sizeof b, 2, 2);
      order.push_back(b);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{111, 222}));
}

TEST(Baseline, WildcardReceiveMatchesArrivalOrder) {
  net::Cluster cluster(smallCluster());
  std::vector<int> got;
  runJob(cluster, fastInit(), blockMapping(3, 8, 1), [&](Comm& comm) {
    if (comm.rank() > 0) {
      const int v = comm.rank() * 10;
      if (comm.rank() == 2) comm.compute(usec(500));
      comm.send(&v, sizeof v, 0, 3);
    } else {
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        mpi::Status st;
        comm.recv(&v, sizeof v, mpi::kAnySource, mpi::kAnyTag, &st);
        got.push_back(v);
        EXPECT_EQ(st.tag, 3);
        EXPECT_EQ(st.bytes, sizeof v);
        EXPECT_EQ(st.source * 10, v);
      }
    }
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 10);  // rank 1's message arrived first
  EXPECT_EQ(got[1], 20);
}

TEST(Baseline, NonOvertakingBetweenSamePair) {
  net::Cluster cluster(smallCluster());
  std::vector<int> got;
  runJob(cluster, fastInit(), blockMapping(2, 8, 1), [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(&i, sizeof i, 1, /*tag=*/0);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        comm.recv(&v, sizeof v, 0, 0);
        got.push_back(v);
      }
    }
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(Baseline, IsendIrecvWaitallOverlap) {
  net::Cluster cluster(smallCluster());
  sim::SimTime elapsed = 0;
  runJob(cluster, fastInit(), blockMapping(2, 8, 1), [&](Comm& comm) {
    const std::size_t n = 1024;
    std::vector<double> out(n, comm.rank() + 0.5), in(n);
    const int peer = 1 - comm.rank();
    const sim::SimTime t0 = comm.now();
    std::vector<mpi::Request> reqs;
    reqs.push_back(comm.irecvv<double>(in, peer, 0));
    reqs.push_back(comm.isendv<double>(std::span<const double>(out), peer, 0));
    comm.compute(msec(2));
    comm.waitall(reqs);
    if (comm.rank() == 0) {
      elapsed = comm.now() - t0;
      EXPECT_DOUBLE_EQ(in[0], 1.5);
    }
  });
  // Communication (~tens of us) hides inside the 2 ms compute.
  EXPECT_LT(elapsed, msec(2) + usec(200));
}

TEST(Baseline, TestReturnsFalseThenTrue) {
  net::Cluster cluster(smallCluster());
  bool early_test = true;
  bool late_test = false;
  runJob(cluster, fastInit(), blockMapping(2, 8, 1), [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(msec(1));
      const int v = 9;
      comm.send(&v, sizeof v, 1, 0);
    } else {
      int v = 0;
      mpi::Request r = comm.irecv(&v, sizeof v, 0, 0);
      early_test = comm.test(r);
      while (!comm.test(r)) comm.compute(usec(100));
      late_test = true;
      EXPECT_EQ(v, 9);
    }
  });
  EXPECT_FALSE(early_test);
  EXPECT_TRUE(late_test);
}

TEST(Baseline, ProbeSeesPendingMessage) {
  net::Cluster cluster(smallCluster());
  std::size_t probed_bytes = 0;
  runJob(cluster, fastInit(), blockMapping(2, 8, 1), [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<char> payload(777);
      comm.send(payload.data(), payload.size(), 1, 4);
    } else {
      mpi::Status st;
      EXPECT_TRUE(comm.probe(0, 4, &st, /*blocking=*/true));
      probed_bytes = st.bytes;
      std::vector<char> buf(st.bytes);
      comm.recv(buf.data(), buf.size(), st.source, st.tag);
    }
  });
  EXPECT_EQ(probed_bytes, 777u);
}

TEST(Baseline, BarrierSynchronizesRanks) {
  net::Cluster cluster(smallCluster());
  std::vector<sim::SimTime> after(4);
  runJob(cluster, fastInit(), blockMapping(4, 8, 1), [&](Comm& comm) {
    comm.compute(msec(comm.rank()));  // staggered arrivals
    comm.barrier();
    after[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  // Everyone leaves at (essentially) the same time, after the slowest.
  for (int r = 0; r < 4; ++r) {
    EXPECT_GE(after[static_cast<std::size_t>(r)], msec(3));
    EXPECT_NEAR(static_cast<double>(after[static_cast<std::size_t>(r)]),
                static_cast<double>(after[0]), usec(50));
  }
}

TEST(Baseline, BcastDeliversFromNonZeroRoot) {
  net::Cluster cluster(smallCluster());
  std::vector<std::vector<int>> results(6);
  runJob(cluster, fastInit(), blockMapping(6, 8, 1), [&](Comm& comm) {
    std::vector<int> data(100);
    if (comm.rank() == 2) {
      std::iota(data.begin(), data.end(), 7);
    }
    comm.bcast(data.data(), data.size() * sizeof(int), /*root=*/2);
    results[static_cast<std::size_t>(comm.rank())] = data;
  });
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), 100u);
    EXPECT_EQ(r[0], 7);
    EXPECT_EQ(r[99], 106);
  }
}

TEST(Baseline, ReduceSumToRoot) {
  net::Cluster cluster(smallCluster());
  std::vector<double> root_result;
  runJob(cluster, fastInit(), blockMapping(8, 8, 1), [&](Comm& comm) {
    std::vector<double> contrib(16, comm.rank() + 1.0);
    std::vector<double> result(16, -1.0);
    comm.reduce(contrib.data(), result.data(), 16, mpi::Datatype::kFloat64,
                mpi::ReduceOp::kSum, /*root=*/3);
    if (comm.rank() == 3) root_result = result;
  });
  ASSERT_EQ(root_result.size(), 16u);
  for (double v : root_result) EXPECT_DOUBLE_EQ(v, 36.0);  // 1+2+...+8
}

TEST(Baseline, AllreduceMinMax) {
  net::Cluster cluster(smallCluster());
  std::vector<std::int64_t> mins(5), maxs(5);
  runJob(cluster, fastInit(), blockMapping(5, 8, 1), [&](Comm& comm) {
    const auto r = static_cast<std::int64_t>(comm.rank());
    mins[static_cast<std::size_t>(r)] =
        comm.allreduceOne(r * 10 - 7, mpi::ReduceOp::kMin);
    maxs[static_cast<std::size_t>(r)] =
        comm.allreduceOne(r * 10 - 7, mpi::ReduceOp::kMax);
  });
  for (auto v : mins) EXPECT_EQ(v, -7);
  for (auto v : maxs) EXPECT_EQ(v, 33);
}

TEST(Baseline, ComposedCollectivesScatterGatherAlltoall) {
  net::Cluster cluster(smallCluster());
  const int P = 4;
  std::vector<bool> ok(static_cast<std::size_t>(P), false);
  runJob(cluster, fastInit(), blockMapping(P, 8, 1), [&](Comm& comm) {
    const int r = comm.rank();
    // scatter
    std::vector<int> scatter_src(static_cast<std::size_t>(P));
    std::iota(scatter_src.begin(), scatter_src.end(), 0);
    int mine = -1;
    comm.scatter(scatter_src.data(), sizeof(int), &mine, /*root=*/0);
    bool good = (mine == r);
    // gather
    const int contrib = r * r;
    std::vector<int> gathered(static_cast<std::size_t>(P), -1);
    comm.gather(&contrib, sizeof(int), gathered.data(), /*root=*/1);
    if (r == 1) {
      for (int i = 0; i < P; ++i) {
        good = good && gathered[static_cast<std::size_t>(i)] == i * i;
      }
    }
    // allgather
    std::vector<int> all(static_cast<std::size_t>(P), -1);
    comm.allgather(&contrib, sizeof(int), all.data());
    for (int i = 0; i < P; ++i) {
      good = good && all[static_cast<std::size_t>(i)] == i * i;
    }
    // alltoall: rank r sends value 100*r + d to destination d.
    std::vector<int> send(static_cast<std::size_t>(P)), recv(
        static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) send[static_cast<std::size_t>(d)] = 100 * r + d;
    comm.alltoall(send.data(), sizeof(int), recv.data());
    for (int s = 0; s < P; ++s) {
      good = good && recv[static_cast<std::size_t>(s)] == 100 * s + r;
    }
    ok[static_cast<std::size_t>(r)] = good;
  });
  for (bool b : ok) EXPECT_TRUE(b);
}

TEST(Baseline, TwoRanksPerNodeWork) {
  net::Cluster cluster(smallCluster(4));
  std::vector<int> sums(8, 0);
  runJob(cluster, fastInit(), blockMapping(8, 4, 2), [&](Comm& comm) {
    sums[static_cast<std::size_t>(comm.rank())] = static_cast<int>(
        comm.allreduceOne(static_cast<std::int64_t>(comm.rank()),
                          mpi::ReduceOp::kSum));
  });
  for (int s : sums) EXPECT_EQ(s, 28);
}

TEST(Baseline, SmallMessageLatencyIsAFewMicroseconds) {
  net::Cluster cluster(smallCluster());
  sim::SimTime rtt = 0;
  BaselineConfig cfg = fastInit();
  runJob(cluster, cfg, blockMapping(2, 8, 1), [&](Comm& comm) {
    char c = 'x';
    if (comm.rank() == 0) {
      const sim::SimTime t0 = comm.now();
      comm.send(&c, 1, 1, 0);
      comm.recv(&c, 1, 1, 0);
      rtt = comm.now() - t0;
    } else {
      comm.recv(&c, 1, 0, 0);
      comm.send(&c, 1, 0, 0);
    }
  });
  // Production-MPI-era half round trip on QsNet is ~4-6 us.
  EXPECT_GT(rtt / 2, usec(2));
  EXPECT_LT(rtt / 2, usec(15));
}

TEST(Baseline, BandwidthApproachesLinkRate) {
  net::Cluster cluster(smallCluster());
  double mbps = 0;
  runJob(cluster, fastInit(), blockMapping(2, 8, 1), [&](Comm& comm) {
    const std::size_t bytes = 8 << 20;
    std::vector<char> buf(bytes, 1);
    if (comm.rank() == 0) {
      const sim::SimTime t0 = comm.now();
      comm.send(buf.data(), bytes, 1, 0);
      char ack;
      comm.recv(&ack, 1, 1, 0);
      mbps = static_cast<double>(bytes) / sim::toSec(comm.now() - t0) / 1e6;
    } else {
      comm.recv(buf.data(), bytes, 0, 0);
      const char ack = 1;
      comm.send(&ack, 1, 0, 0);
    }
  });
  EXPECT_GT(mbps, 250.0);  // QsNet link is 340 MB/s
  EXPECT_LT(mbps, 345.0);
}

TEST(Baseline, TruncatingReceiveThrows) {
  net::Cluster cluster(smallCluster());
  EXPECT_THROW(
      runJob(cluster, fastInit(), blockMapping(2, 8, 1),
             [&](Comm& comm) {
               if (comm.rank() == 0) {
                 std::vector<char> big(128);
                 comm.send(big.data(), big.size(), 1, 0);
               } else {
                 char tiny[4];
                 comm.recv(tiny, sizeof tiny, 0, 0);
               }
             }),
      sim::SimError);
}

}  // namespace
