#pragma once

// The golden-trace scenario set: three representative workloads whose full
// trace dumps are pinned byte-for-byte under tests/golden/.
//
// Any engine change that perturbs event schedules — ordering keys, queue
// mechanics, fabric timing, runtime strobing — shows up as a golden diff,
// serial or parallel alike (the conformance tier already pins
// serial ≡ parallel, so the corpus only needs to pin the serial dump).
//
// Shared between golden_gen (the regenerator, see tools/regen_golden.py)
// and test_golden (the replayer) so the two can never drift apart.

#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "apps/selfsched.hpp"
#include "apps/wavefront.hpp"
#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"
#include "snapshot/scenario.hpp"

namespace bcs::golden {

/// The quickstart example (examples/quickstart.cpp) with tracing on: 8
/// nodes, 16 ranks, five halo-exchange + allreduce steps.
inline std::string traceQuickstart() {
  net::ClusterConfig machine;
  machine.num_compute_nodes = 8;
  net::Cluster cluster(machine);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig mpi_cfg;
  mpi_cfg.runtime_init_overhead = sim::msec(1);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, mpi_cfg);

  const std::vector<int> node_of_rank = {0, 0, 1, 1, 2, 2, 3, 3,
                                         4, 4, 5, 5, 6, 6, 7, 7};
  bcsmpi::launchJob(*runtime, node_of_rank, [](mpi::Comm& comm) {
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    const int right = (comm.rank() + 1) % comm.size();
    std::vector<double> halo_out(512, comm.rank() * 1.0), halo_in(512);
    double residual = 1.0;
    for (int step = 0; step < 5 && residual > 1e-9; ++step) {
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.irecvv<double>(halo_in, left, step));
      reqs.push_back(comm.isendv<double>(
          std::span<const double>(halo_out), right, step));
      comm.compute(sim::msec(2));
      comm.waitall(reqs);
      residual = comm.allreduceOne(halo_in[0] / (step + 1.0),
                                   mpi::ReduceOp::kMax);
    }
  });
  cluster.run();
  return cluster.trace().dump();
}

/// The collectives tour (examples/collectives_tour.cpp) with tracing on:
/// barrier, rooted bcast, NIC-side reduce/allreduce, allgather, alltoall
/// and a raw BCS-API barrier on 6 nodes.
inline std::string traceCollectivesTour() {
  net::ClusterConfig machine;
  machine.num_compute_nodes = 6;
  net::Cluster cluster(machine);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(100);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  bcsmpi::launchJob(*runtime, {0, 1, 2, 3, 4, 5}, [](mpi::Comm& comm) {
    const int r = comm.rank();
    const int P = comm.size();

    comm.compute(sim::msec(r));
    comm.barrier();

    std::vector<int> table(8);
    if (r == 2) std::iota(table.begin(), table.end(), 100);
    comm.bcast(table.data(), table.size() * sizeof(int), /*root=*/2);

    const double mine = 0.1 * (r + 1);
    double sum = 0;
    comm.reduce(&mine, &sum, 1, mpi::Datatype::kFloat64, mpi::ReduceOp::kSum,
                /*root=*/0);
    (void)comm.allreduceOne(mine, mpi::ReduceOp::kMax);

    std::vector<std::int32_t> mine_sq{static_cast<std::int32_t>(r * r)};
    std::vector<std::int32_t> squares(static_cast<std::size_t>(P));
    comm.allgather(mine_sq.data(), sizeof(std::int32_t), squares.data());

    std::vector<std::int32_t> to_all(static_cast<std::size_t>(P)),
        from_all(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      to_all[static_cast<std::size_t>(d)] = 10 * r + d;
    }
    comm.alltoall(to_all.data(), sizeof(std::int32_t), from_all.data());

    auto& api = static_cast<bcsmpi::BcsComm&>(comm).api();
    api.barrier();
  });
  cluster.run();
  return cluster.trace().dump();
}

/// A compact Sweep3D wavefront (src/apps/wavefront.hpp) with tracing on:
/// 8 ranks, two source-iteration steps of two sweeps each, non-blocking
/// flavour (the paper's rewrite), scaled-down compute so the trace stays
/// a corpus-sized artifact rather than a multi-second run.
inline std::string traceSweep3d() {
  const int P = 8;
  net::ClusterConfig machine;
  machine.num_compute_nodes = P;
  net::Cluster cluster(machine);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(200);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  bcsmpi::launchJob(*runtime, map, [](mpi::Comm& comm) {
    apps::Sweep3dConfig scfg;
    scfg.time_steps = 2;
    scfg.sweeps_per_step = 2;
    scfg.blocks = 4;
    scfg.step_compute = sim::usec(300);
    scfg.message_bytes = 2048;
    scfg.blocking = false;
    (void)apps::sweep3d(comm, scfg);
  });
  cluster.run();
  return cluster.trace().dump();
}

/// Sharded fabric soup, generated *through the parallel driver*: 16 nodes,
/// one shard each, ring unicast streams crossing shard boundaries via
/// Engine::handoff, drained under a 4-thread ParallelPolicy.  The
/// conformance tier proves serial ≡ parallel; this pins the parallel-mode
/// dump itself across refactors of the arenas, batched handoff merge and
/// barrier protocol — a regression there either diffs this trace or trips
/// the conformance tier, whichever way it tilts.
inline std::string traceParSoupImpl(bool parallel) {
  constexpr int K = 16;
  constexpr int kRounds = 6;

  auto eng = std::make_shared<sim::Engine>();
  auto trace = std::make_shared<sim::Trace>();
  trace->enable();
  auto fabric = std::make_shared<net::Fabric>(
      *eng, net::NetworkParams::qsnet(), K, trace.get());
  std::vector<sim::ShardId> map(K);
  for (int n = 0; n < K; ++n) {
    map[static_cast<std::size_t>(n)] = static_cast<sim::ShardId>(n);
  }
  fabric->setShardMap(map);

  auto send = std::make_shared<std::function<void(int, int)>>();
  auto* sendp = send.get();  // raw self-reference; `send` outlives the run
  *send = [fabric, trace, eng, sendp](int n, int round) {
    if (round == kRounds) return;
    const int dst = (n + 1) % K;
    fabric->unicast(
        n, dst, 256 + 32 * static_cast<std::size_t>(n % 4),
        /*on_delivered=*/
        [trace, eng, dst, n, round] {
          trace->record(eng->now(), sim::TraceCategory::kApp, dst,
                        "got round " + std::to_string(round) + " from n" +
                            std::to_string(n));
        },
        /*on_injected=*/[sendp, n, round] { (*sendp)(n, round + 1); });
  };
  for (int n = 0; n < K; ++n) {
    eng->atOn(static_cast<sim::ShardId>(n), sim::usec(1) * n,
              [send, n] { (*send)(n, 0); });
  }

  if (parallel) {
    sim::ParallelPolicy policy;
    policy.threads = 4;
    policy.window = sim::usec(1);  // <= min QsNet latency: lookahead is safe
    eng->run(policy);
  } else {
    eng->run();
  }
  return trace->dump();
}

inline std::string traceParSoup() { return traceParSoupImpl(true); }

/// Hierarchical control plane (BcsMpiConfig::tree_fanout, DESIGN.md §7):
/// 32 nodes at fanout 8 — four racks — running a neighbour exchange plus an
/// allreduce that crosses rack boundaries.  Tree-mode schedules are
/// deliberately coarser than flat (rack-shared floor and drain events), so
/// this pins the tree schedule itself; the other scenarios keep pinning the
/// flat one.
inline std::string traceTreeExchange() {
  const int P = 32;
  net::ClusterConfig machine;
  machine.num_compute_nodes = P;
  net::Cluster cluster(machine);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(100);
  cfg.tree_fanout = 8;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  bcsmpi::launchJob(*runtime, map, [](mpi::Comm& comm) {
    const int me = comm.rank();
    const int P2 = comm.size();
    std::vector<std::uint8_t> out(1024), in(1024);
    for (int round = 0; round < 4; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), (me + 1) % P2, round);
      auto rreq = comm.irecv(in.data(), in.size(), (me + P2 - 1) % P2, round);
      comm.wait(sreq, nullptr);
      comm.wait(rreq, nullptr);
    }
    (void)comm.allreduceOne(me * 1.0, mpi::ReduceOp::kSum);
  });
  cluster.run();
  return cluster.trace().dump();
}

/// Checkpoint at slice 4, kill at 3 ms, restore into a fresh stack and run
/// to drain; the dump is prefix(killed run) + continuation.  Pinning the
/// splice byte-for-byte makes any restore-identity regression a golden diff
/// (src/snapshot, DESIGN.md §8).
inline std::string traceCkptResume() { return snapshot::traceCkptResume(); }

/// One-sided work stealing (src/apps/selfsched, DESIGN.md §11): 8 nodes
/// running the fetch-add self-scheduler over a 4×-ramped loop.  Pins the
/// whole RMA epoch pipeline — DEM batch exchange, canonical-order MSM
/// apply, P2P completion returns — byte-for-byte, including the
/// chunk→owner map folded in as an app trace line.
inline std::string traceRmaSteal() {
  const int P = 8;
  net::ClusterConfig machine;
  machine.num_compute_nodes = P;
  net::Cluster cluster(machine);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(100);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  apps::SelfSchedConfig scfg;
  scfg.chunks = 48;
  scfg.chunk_batch = 2;
  scfg.base_cost = sim::usec(90);
  scfg.cost_ramp = 4.0;

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  bcsmpi::launchJob(*runtime, map, [&cluster, &scfg](mpi::Comm& comm) {
    const apps::SelfSchedResult res = apps::selfSchedule(comm, scfg);
    cluster.trace().record(comm.now(), sim::TraceCategory::kApp, comm.rank(),
                          "self-sched: ran " +
                              std::to_string(res.chunks.size()) +
                              " chunk(s), owner digest " +
                              std::to_string(res.digest));
  });
  cluster.run();
  return cluster.trace().dump();
}

struct Scenario {
  const char* name;
  std::string (*generate)();
};

inline const Scenario kScenarios[] = {
    {"quickstart", &traceQuickstart},
    {"collectives_tour", &traceCollectivesTour},
    {"sweep3d", &traceSweep3d},
    {"par_soup", &traceParSoup},
    {"tree_exchange", &traceTreeExchange},
    {"ckpt_resume", &traceCkptResume},
    {"rma_steal", &traceRmaSteal},
};

}  // namespace bcs::golden
