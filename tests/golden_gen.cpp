// Golden-trace corpus (re)generator.
//
//   $ golden_gen <output-dir>          # write <name>.trace.bcsz per scenario
//   $ golden_gen --dump <file.bcsz>    # decompress a corpus file to stdout
//
// Normally driven by tools/regen_golden.py.  Regenerating is the ONLY
// sanctioned way to update tests/golden/ — and only after convincing
// yourself the schedule change behind a diff is intended.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "codec/lzss.hpp"
#include "golden_scenarios.hpp"

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--dump") == 0) {
    std::ifstream in(argv[2], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    std::vector<std::uint8_t> blob{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
    const std::string raw = bcs::codec::decompress(blob);
    std::fwrite(raw.data(), 1, raw.size(), stdout);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir> | --dump <file.bcsz>\n",
                 argv[0]);
    return 2;
  }

  const std::string outdir = argv[1];
  for (const auto& sc : bcs::golden::kScenarios) {
    const std::string raw = sc.generate();
    const std::vector<std::uint8_t> blob = bcs::codec::compress(raw);
    // Round-trip before trusting the artifact.
    if (bcs::codec::decompress(blob) != raw) {
      std::fprintf(stderr, "%s: codec round-trip failed\n", sc.name);
      return 1;
    }
    const std::string path = outdir + "/" + sc.name + ".trace.bcsz";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    std::printf("%-18s %9zu raw -> %8zu compressed (%.1fx)\n", sc.name,
                raw.size(), blob.size(),
                blob.empty() ? 0.0
                             : static_cast<double>(raw.size()) /
                                   static_cast<double>(blob.size()));
  }
  return 0;
}
