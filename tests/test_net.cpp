// Unit tests for the network substrate: topology, parameter presets, and the
// fabric timing model (unicast, contention, multicast, conditionals).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/cluster.hpp"
#include "net/fabric.hpp"
#include "net/params.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace {

using namespace bcs;
using namespace bcs::net;
using sim::SimTime;
using sim::usec;

// ------------------------------------------------------------- Topology --

TEST(FatTree, SingleLevelDistances) {
  FatTree t(4, 4);
  EXPECT_EQ(t.levels(), 1);
  EXPECT_EQ(t.lcaLevel(0, 1), 1);
  EXPECT_EQ(t.hops(0, 3), 1);
  EXPECT_EQ(t.hops(2, 2), 0);
}

TEST(FatTree, QuaternaryLevels) {
  FatTree t(33, 4);  // 32 compute + 1 management, QsNet quaternary
  EXPECT_EQ(t.levels(), 3);
  EXPECT_EQ(t.lcaLevel(0, 1), 1);   // same leaf switch
  EXPECT_EQ(t.lcaLevel(0, 5), 2);   // adjacent groups
  EXPECT_EQ(t.lcaLevel(0, 17), 3);  // across the top
  EXPECT_EQ(t.hops(0, 17), 5);
}

TEST(FatTree, RejectsBadInput) {
  EXPECT_THROW(FatTree(0, 4), std::invalid_argument);
  EXPECT_THROW(FatTree(4, 1), std::invalid_argument);
  FatTree t(8, 2);
  EXPECT_THROW(t.lcaLevel(0, 8), std::out_of_range);
}

// --------------------------------------------------------------- Params --

TEST(Params, PresetsAreSelfConsistent) {
  for (const auto& p :
       {NetworkParams::qsnet(), NetworkParams::gigabitEthernet(),
        NetworkParams::myrinet(), NetworkParams::infiniband(),
        NetworkParams::bluegeneL()}) {
    EXPECT_GT(p.link_bandwidth, 0.0) << p.name;
    EXPECT_GT(p.effectiveBandwidth(), 0.0) << p.name;
    EXPECT_LE(p.effectiveBandwidth(), p.link_bandwidth) << p.name;
    EXPECT_GE(p.radix, 2) << p.name;
    if (!p.hw_conditional) {
      EXPECT_GT(p.sw_step_latency, 0) << p.name;
    }
  }
}

TEST(Params, QsNetHasHardwareCollectives) {
  const auto p = NetworkParams::qsnet();
  EXPECT_TRUE(p.hw_multicast);
  EXPECT_TRUE(p.hw_conditional);
  EXPECT_NEAR(p.effectiveBandwidth(), 0.34, 1e-9);  // PCI not the bottleneck
}

// --------------------------------------------------------------- Fabric --

struct FabricFixture : ::testing::Test {
  sim::Engine eng;
  NetworkParams params = NetworkParams::qsnet();
  Fabric fabric{eng, params, 33};
};

TEST_F(FabricFixture, UnicastLatencyMatchesModel) {
  SimTime delivered = -1;
  const std::size_t bytes = 4096;
  fabric.unicast(0, 1, bytes, [&] { delivered = eng.now(); });
  eng.run();
  const auto serial = static_cast<SimTime>(
      std::ceil(static_cast<double>(bytes) / params.effectiveBandwidth()));
  const SimTime expected = params.nic_tx_overhead + params.pci_latency +
                           fabric.baseLatency(0, 1) + serial +
                           params.nic_rx_overhead;
  EXPECT_EQ(delivered, expected);
}

TEST_F(FabricFixture, FartherNodesTakeLonger) {
  SimTime near = -1, far = -1;
  fabric.unicast(0, 1, 64, [&] { near = eng.now(); });
  eng.run();
  sim::Engine eng2;
  Fabric fabric2(eng2, params, 33);
  fabric2.unicast(0, 17, 64, [&] { far = eng2.now(); });
  eng2.run();
  EXPECT_GT(far, near);
}

TEST_F(FabricFixture, EgressSerializesBackToBackSends) {
  // Two large messages from the same source must serialize on its egress.
  std::vector<SimTime> t(2, -1);
  const std::size_t bytes = 1 << 20;
  fabric.unicast(0, 1, bytes, [&] { t[0] = eng.now(); });
  fabric.unicast(0, 2, bytes, [&] { t[1] = eng.now(); });
  eng.run();
  const auto serial = static_cast<SimTime>(
      std::ceil(static_cast<double>(bytes) / params.effectiveBandwidth()));
  EXPECT_GE(t[1] - t[0], serial - usec(1));
}

TEST_F(FabricFixture, IngressSerializesConcurrentSenders) {
  std::vector<SimTime> t(2, -1);
  const std::size_t bytes = 1 << 20;
  fabric.unicast(1, 0, bytes, [&] { t[0] = eng.now(); });
  fabric.unicast(2, 0, bytes, [&] { t[1] = eng.now(); });
  eng.run();
  const auto serial = static_cast<SimTime>(
      std::ceil(static_cast<double>(bytes) / params.effectiveBandwidth()));
  EXPECT_GE(std::abs(t[1] - t[0]), serial - usec(1));
}

TEST_F(FabricFixture, DisjointPairsDoNotContend) {
  SimTime alone = -1;
  fabric.unicast(0, 1, 65536, [&] { alone = eng.now(); });
  eng.run();

  sim::Engine eng2;
  Fabric f2(eng2, params, 33);
  std::vector<SimTime> t(2, -1);
  f2.unicast(0, 1, 65536, [&] { t[0] = eng2.now(); });
  f2.unicast(2, 3, 65536, [&] { t[1] = eng2.now(); });
  eng2.run();
  EXPECT_EQ(t[0], alone);
  EXPECT_EQ(t[1], alone);
}

TEST_F(FabricFixture, SelfSendUsesLoopback) {
  SimTime delivered = -1;
  fabric.unicast(5, 5, 1024, [&] { delivered = eng.now(); });
  eng.run();
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, usec(10));
}

TEST_F(FabricFixture, HardwareMulticastReachesAllDestinations) {
  std::vector<int> got;
  bool all = false;
  fabric.multicast(0, {1, 2, 3, 8, 16, 32}, 256,
                   [&](int node) { got.push_back(node); }, [&] { all = true; });
  eng.run();
  EXPECT_TRUE(all);
  EXPECT_EQ(got.size(), 6u);
}

TEST_F(FabricFixture, MulticastExcludesSourceAndDedups) {
  std::vector<int> got;
  fabric.multicast(0, {0, 1, 1, 2}, 64, [&](int node) { got.push_back(node); },
                   {});
  eng.run();
  EXPECT_EQ(got.size(), 2u);
}

TEST_F(FabricFixture, MulticastLatencyIsNearlyFlatInFanout) {
  SimTime small_fan = -1, large_fan = -1;
  {
    sim::Engine e1;
    Fabric f1(e1, params, 130);
    f1.multicast(0, {1, 2}, 64, {}, [&] { small_fan = e1.now(); });
    e1.run();
  }
  {
    sim::Engine e2;
    Fabric f2(e2, params, 130);
    std::vector<int> dests;
    for (int i = 1; i < 128; ++i) dests.push_back(i);
    f2.multicast(0, dests, 64, {}, [&] { large_fan = e2.now(); });
    e2.run();
  }
  // Hardware multicast: fan-out of 127 costs little more than fan-out of 2.
  EXPECT_LT(large_fan, 2 * small_fan);
}

TEST_F(FabricFixture, ConditionalEvaluatesAtOneInstant) {
  std::vector<int> nodes{0, 1, 2, 3};
  std::vector<bool> flag(4, true);
  bool result = false;
  SimTime when = -1;
  fabric.conditional(
      0, nodes, [&](int n) { return flag[static_cast<std::size_t>(n)]; },
      /*write=*/{},
      [&](bool ok) {
        result = ok;
        when = eng.now();
      });
  // Flip a flag *before* the conditional's evaluation instant: the paper's
  // sequential-consistency requirement means evaluation sees this write.
  flag[2] = false;
  eng.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(when, fabric.conditionalLatency(4));
}

TEST_F(FabricFixture, ConditionalWritePhaseAppliesToAllNodes) {
  std::vector<int> nodes{0, 1, 2};
  std::vector<int> value(3, 0);
  fabric.conditional(0, nodes, [](int) { return true; },
                     [&](int n) { value[static_cast<std::size_t>(n)] = 7; },
                     {});
  eng.run();
  EXPECT_EQ(value, (std::vector<int>{7, 7, 7}));
}

TEST_F(FabricFixture, ConditionalSkipsWriteWhenFalse) {
  std::vector<int> nodes{0, 1, 2};
  std::vector<int> value(3, 0);
  fabric.conditional(0, nodes, [](int n) { return n != 1; },
                     [&](int n) { value[static_cast<std::size_t>(n)] = 7; },
                     {});
  eng.run();
  EXPECT_EQ(value, (std::vector<int>{0, 0, 0}));
}

TEST(SoftwareCollectives, EmulatedMulticastScalesLogarithmically) {
  // Myrinet-style software tree: latency grows with log2(n), not n.
  const auto params = NetworkParams::myrinet();
  auto run_mcast = [&](int n) {
    sim::Engine eng;
    Fabric fabric(eng, params, 1025);
    std::vector<int> dests;
    for (int i = 1; i < n; ++i) dests.push_back(i);
    SimTime done = -1;
    fabric.multicast(0, dests, 64, {}, [&] { done = eng.now(); });
    eng.run();
    return done;
  };
  const SimTime t8 = run_mcast(8);
  const SimTime t64 = run_mcast(64);
  const SimTime t512 = run_mcast(512);
  // log2: 3, 6, 9 levels — roughly linear increments, far from linear in n.
  EXPECT_LT(static_cast<double>(t64), 2.6 * static_cast<double>(t8));
  EXPECT_LT(static_cast<double>(t512), 2.0 * static_cast<double>(t64));
}

TEST(SoftwareCollectives, EmulatedConditionalMatchesTable1Envelope) {
  // GigE: 46 us per tree level (Table 1).
  const auto params = NetworkParams::gigabitEthernet();
  sim::Engine eng;
  Fabric fabric(eng, params, 1025);
  EXPECT_EQ(fabric.conditionalLatency(2), usec(46));
  EXPECT_EQ(fabric.conditionalLatency(64), 6 * usec(46));
  EXPECT_EQ(fabric.conditionalLatency(1024), 10 * usec(46));
}

TEST(SoftwareCollectives, QsNetConditionalUnder10us) {
  const auto params = NetworkParams::qsnet();
  sim::Engine eng;
  Fabric fabric(eng, params, 1025);
  EXPECT_LT(fabric.conditionalLatency(1024), usec(10));
}

TEST(FabricStatsTest, CountsOperations) {
  sim::Engine eng;
  Fabric fabric(eng, NetworkParams::qsnet(), 8);
  fabric.unicast(0, 1, 100, [] {});
  fabric.multicast(0, {1, 2}, 100, {}, {});
  fabric.conditional(0, {0, 1}, [](int) { return true; }, {}, {});
  eng.run();
  EXPECT_EQ(fabric.stats().unicasts, 1u);
  EXPECT_EQ(fabric.stats().multicasts, 1u);
  EXPECT_EQ(fabric.stats().conditionals, 1u);
  EXPECT_GE(fabric.stats().payload_bytes, 300u);
}

// -------------------------------------------------------------- Cluster --

TEST(ClusterTest, SpawnAndRunProcesses) {
  ClusterConfig cfg;
  cfg.num_compute_nodes = 4;
  Cluster cluster(cfg);
  int ran = 0;
  for (int n = 0; n < 4; ++n) {
    cluster.spawn(n, "worker" + std::to_string(n), [&](sim::Process& p) {
      p.compute(sim::msec(1));
      ++ran;
    });
  }
  cluster.run();
  EXPECT_EQ(ran, 4);
  EXPECT_TRUE(cluster.allProcessesFinished());
  EXPECT_TRUE(cluster.unfinishedProcesses().empty());
}

TEST(ClusterTest, ReportsUnfinishedProcessesOnDeadlock) {
  ClusterConfig cfg;
  cfg.num_compute_nodes = 2;
  Cluster cluster(cfg);
  cluster.spawn(0, "stuck", [](sim::Process& p) {
    p.block();  // nobody ever wakes us
  });
  cluster.run();
  EXPECT_FALSE(cluster.allProcessesFinished());
  ASSERT_EQ(cluster.unfinishedProcesses().size(), 1u);
  EXPECT_EQ(cluster.unfinishedProcesses()[0], "stuck");
}

TEST(ClusterTest, ManagementNodeIsExtra) {
  ClusterConfig cfg;
  cfg.num_compute_nodes = 8;
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.managementNode(), 8);
  EXPECT_EQ(cluster.totalNodes(), 9);
  EXPECT_EQ(cluster.fabric().numNodes(), 9);
}

}  // namespace
