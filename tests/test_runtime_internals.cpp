// White-box tests of the BCS-MPI runtime: statistics accounting, slice-grid
// behaviour, error reporting, the spin-vs-descheduled wait distinction, the
// DEM drain window, and multi-job isolation.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "bcsmpi/runtime.hpp"
#include "net/cluster.hpp"

namespace {

using namespace bcs;
using bcsmpi::BcsMpiConfig;
using mpi::Comm;
using sim::msec;
using sim::usec;

net::ClusterConfig nodes(int n) {
  net::ClusterConfig cfg;
  cfg.num_compute_nodes = n;
  return cfg;
}

BcsMpiConfig fast() {
  BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  return cfg;
}

TEST(RuntimeInternals, StatsCountDescriptorsMatchesAndChunks) {
  net::Cluster cluster(nodes(2));
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, fast());
  bcsmpi::launchJob(*runtime, {0, 1}, [](Comm& comm) {
    char c = 0;
    for (int i = 0; i < 4; ++i) {
      if (comm.rank() == 0) {
        comm.send(&c, 1, 1, i);
      } else {
        comm.recv(&c, 1, 0, i);
      }
    }
  });
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());
  const auto& st = runtime->stats();
  EXPECT_EQ(st.descriptors_exchanged, 4u);  // one send descriptor each
  EXPECT_EQ(st.matches, 4u);
  EXPECT_EQ(st.chunks_transferred, 4u);  // tiny messages: one chunk each
  EXPECT_EQ(st.collectives_scheduled, 0u);
  EXPECT_EQ(st.microstrobes, 5 * st.slices);
  EXPECT_EQ(st.slice_overruns, 0u);
}

TEST(RuntimeInternals, CollectiveCountersTrackGenerations) {
  net::Cluster cluster(nodes(4));
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, fast());
  bcsmpi::launchJob(*runtime, {0, 1, 2, 3}, [](Comm& comm) {
    for (int i = 0; i < 3; ++i) comm.barrier();
    double v = comm.rank();
    double out = 0;
    comm.allreduce(&v, &out, 1, mpi::Datatype::kFloat64, mpi::ReduceOp::kSum);
  });
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());
  EXPECT_EQ(runtime->stats().collectives_scheduled, 4u);
}

TEST(RuntimeInternals, SpinWaitResumesMidSliceButBlockingWaitsForBoundary) {
  // The Figure 2 distinction: Irecv+Wait (spin) continues at the completion
  // instant; blocking MPI_Recv restarts at a slice boundary.
  net::Cluster cluster(nodes(2));
  BcsMpiConfig cfg = fast();
  sim::SimTime spin_resume = -1, blocking_resume = -1;
  bcsmpi::runJob(cluster, cfg, {0, 1}, [&](Comm& comm) {
    char c = 0;
    // Round 1: non-blocking + wait (spin).
    if (comm.rank() == 0) {
      comm.send(&c, 1, 1, 0);
    } else {
      mpi::Request r = comm.irecv(&c, 1, 0, 0);
      comm.wait(r);
      spin_resume = comm.now();
    }
    comm.barrier();
    // Round 2: blocking receive.
    if (comm.rank() == 0) {
      comm.send(&c, 1, 1, 1);
    } else {
      comm.recv(&c, 1, 0, 1);
      blocking_resume = comm.now();
    }
  });
  ASSERT_GT(spin_resume, 0);
  ASSERT_GT(blocking_resume, 0);
  // A blocking-primitive resume lands within the NM wakeup window right
  // after a slice boundary; a spin resume lands mid-slice (during the P2P
  // microphase, >100 us in).  The slice grid is anchored at the runtime
  // bring-up instant (50 us here), not at zero.
  const auto phase_of = [&](sim::SimTime t) {
    return (t - usec(50)) % cfg.time_slice;
  };
  EXPECT_LT(phase_of(blocking_resume), usec(40));
  EXPECT_GT(phase_of(spin_resume), usec(100));
}

TEST(RuntimeInternals, TwoIndependentJobsDoNotInterfere) {
  net::Cluster cluster(nodes(4));
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, fast());
  std::vector<int> sums(2, 0);
  for (int j = 0; j < 2; ++j) {
    // Job 0 on nodes {0,1}, job 1 on nodes {2,3}.
    bcsmpi::launchJob(*runtime, {j * 2, j * 2 + 1}, [&sums, j](Comm& comm) {
      int v = 10 * (j + 1) + comm.rank();
      int got = -1;
      const int peer = 1 - comm.rank();
      mpi::Request rr = comm.irecv(&got, sizeof got, peer, 0);
      comm.send(&v, sizeof v, peer, 0);
      comm.wait(rr);
      if (comm.rank() == 0) sums[static_cast<std::size_t>(j)] = got;
    });
  }
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());
  EXPECT_EQ(sums[0], 11);  // job 0 got job-0 data, not job 1's
  EXPECT_EQ(sums[1], 21);
}

TEST(RuntimeInternals, CollectiveTypeMismatchThrows) {
  // The BR's pre-processing detects ranks of one job disagreeing on the
  // pending collective when they share a node (cross-node disagreement is
  // undefined behaviour here exactly as in real MPI).
  net::Cluster cluster(nodes(2));
  EXPECT_THROW(
      bcsmpi::runJob(cluster, fast(), {0, 0},  // both ranks on node 0
                     [](Comm& comm) {
                       if (comm.rank() == 0) {
                         comm.barrier();
                       } else {
                         char c = 1;
                         comm.bcast(&c, 1, 0);  // different collective!
                       }
                     }),
      sim::SimError);
}

TEST(RuntimeInternals, ReceiveTruncationThrows) {
  net::Cluster cluster(nodes(2));
  EXPECT_THROW(bcsmpi::runJob(cluster, fast(), {0, 1},
                              [](Comm& comm) {
                                if (comm.rank() == 0) {
                                  char big[64] = {};
                                  comm.send(big, sizeof big, 1, 0);
                                } else {
                                  char tiny[8];
                                  comm.recv(tiny, sizeof tiny, 0, 0);
                                }
                              }),
               sim::SimError);
}

TEST(RuntimeInternals, BadDestinationRankThrows) {
  net::Cluster cluster(nodes(2));
  EXPECT_THROW(bcsmpi::runJob(cluster, fast(), {0, 1},
                              [](Comm& comm) {
                                char c = 0;
                                comm.send(&c, 1, /*dest=*/5, 0);
                              }),
               sim::SimError);
}

TEST(RuntimeInternals, DrainWindowCatchesBoundaryPosts) {
  // A process woken at the slice boundary that immediately posts catches
  // the *current* slice (FIFO drain semantics) — its blocking op costs
  // ~1 slice, not ~2.
  net::Cluster cluster(nodes(2));
  BcsMpiConfig cfg = fast();
  std::vector<double> delays;
  bcsmpi::runJob(cluster, cfg, {0, 1}, [&](Comm& comm) {
    char c = 0;
    // The first blocking op aligns both ranks to a boundary; afterwards
    // each iteration posts immediately upon restart.
    for (int i = 0; i < 10; ++i) {
      if (comm.rank() == 0) {
        const sim::SimTime t0 = comm.now();
        comm.send(&c, 1, 1, i);
        if (i > 0) delays.push_back(sim::toUsec(comm.now() - t0));
      } else {
        comm.recv(&c, 1, 0, i);
      }
    }
  });
  ASSERT_FALSE(delays.empty());
  const double slice_us = sim::toUsec(cfg.time_slice);
  for (double d : delays) {
    EXPECT_LT(d, 1.2 * slice_us) << "boundary post missed the drain window";
  }
}

TEST(RuntimeInternals, IprobeNonBlockingReturnsFalseThenTrue) {
  net::Cluster cluster(nodes(2));
  bool early = true, late = false;
  bcsmpi::runJob(cluster, fast(), {0, 1}, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(msec(2));
      char c = 7;
      comm.send(&c, 1, 1, 3);
    } else {
      mpi::Status st;
      early = comm.probe(0, 3, &st, /*blocking=*/false);
      while (!comm.probe(0, 3, &st, /*blocking=*/false)) {
        comm.compute(usec(200));
      }
      late = true;
      EXPECT_EQ(st.bytes, 1u);
      char c = 0;
      comm.recv(&c, 1, 0, 3);
      EXPECT_EQ(c, 7);
    }
  });
  EXPECT_FALSE(early);
  EXPECT_TRUE(late);
}

TEST(RuntimeInternals, StrobeStopsWhenAllJobsFinish) {
  net::Cluster cluster(nodes(2));
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, fast());
  bcsmpi::launchJob(*runtime, {0, 1}, [](Comm& comm) {
    comm.barrier();
  });
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());
  const auto slices_at_finish = runtime->stats().slices;
  // The engine drained: no further strobes are pending.
  EXPECT_EQ(cluster.engine().pendingEvents(), 0u);
  EXPECT_LT(slices_at_finish, 30u);  // a short job stops strobing promptly
}

TEST(RuntimeInternals, SnapshotOfFreshRuntimeIsEmptyAndQuiescent) {
  net::Cluster cluster(nodes(2));
  bcsmpi::Runtime runtime(cluster, fast());
  const auto record = runtime.snapshot();
  EXPECT_TRUE(record.quiescent);
  EXPECT_TRUE(record.jobs.empty());
  EXPECT_EQ(record.nodes.size(), 2u);
  for (const auto& n : record.nodes) {
    EXPECT_EQ(n.fresh_sends + n.fresh_recvs + n.unmatched_remote +
                  n.unmatched_recvs + n.partial_messages,
              0u);
  }
}

}  // namespace
