// Hierarchical control-plane tests (BcsMpiConfig::tree_fanout, DESIGN.md §7).
//
// The invariants under test:
//   * with a strobe-sender tree the root touches O(racks) control messages
//     per slice instead of O(nodes), and the coalesced acks are observable
//     in the runtime counters;
//   * tree-mode runs are replay-deterministic: same seed + same fault plan
//     means a byte-identical trace;
//   * a rack SS crash mid-microphase is survived: the rack's lowest live
//     member claims the epoch, promotes itself rack SS, and the interrupted
//     microphase quiesces and resumes on the period grid;
//   * a root SS crash is survived: the SS of the lowest live rack elects
//     itself backup root and re-collects the interrupted microphase's acks;
//   * simultaneous rack-SS + root loss in the 32-node fault soup resolves
//     through the single global epoch (the two levels cannot elect in
//     parallel) and replays byte-identically.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "storm/storm.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::SimTime;
using sim::usec;

bcsmpi::BcsMpiConfig quickCfg(int tree_fanout) {
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  cfg.tree_fanout = tree_fanout;
  return cfg;
}

void wireControlPlane(storm::Storm& storm, bcsmpi::Runtime& runtime) {
  storm.setDeathHandler([&runtime](int node) {
    runtime.notifyNodeFailure(node);
  });
  storm.setRejoinHandler([&runtime](int node) {
    runtime.notifyNodeRejoin(node);
  });
  runtime.setFailoverHandler([&storm](int node, std::uint64_t) {
    storm.failoverTo(node);
  });
}

// ---------------------------------------------------------------------------
// Fault-free: counters, collectives across racks, replay determinism
// ---------------------------------------------------------------------------

struct TreeRunOut {
  std::string trace;
  std::uint64_t tree_levels = 0;
  std::uint64_t coalesced_acks = 0;
  std::uint64_t fanout_msgs = 0;
  std::uint64_t slices = 0;
  std::size_t unfinished = 99;
  long long reduced = -1;
  std::uint64_t verify_findings = 99;
};

/// Ring exchange plus one allreduce on 64 nodes; fanout 0 = flat control
/// plane, fanout > 0 = SS tree.  The workload is identical either way, so
/// the fanout_msgs_per_slice counters are directly comparable.
TreeRunOut runTree64(int fanout) {
  const int P = 64;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 777;
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg(fanout);
  cfg.verify = true;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  auto reduced = std::make_shared<long long>(-1);
  bcsmpi::launchJob(*runtime, map, [&, reduced](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> out(1024), in(1024);
    for (int round = 0; round < 6; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), (me + 1) % P, round);
      auto rreq = comm.irecv(in.data(), in.size(), (me + P - 1) % P, round);
      comm.wait(sreq, nullptr);
      comm.wait(rreq, nullptr);
    }
    // One allreduce: reduce trees and result broadcasts cross rack
    // boundaries, so the coalesced-ack gating must tolerate rack skew.
    long long contrib = me + 1, sum = 0;
    comm.allreduce(&contrib, &sum, 1, mpi::Datatype::kInt64,
                   mpi::ReduceOp::kSum);
    if (me == 0) *reduced = sum;
  });
  cluster.run();

  TreeRunOut res;
  res.trace = cluster.trace().dump();
  res.tree_levels = runtime->stats().tree_levels;
  res.coalesced_acks = runtime->stats().coalesced_acks;
  res.fanout_msgs = runtime->stats().fanout_msgs_per_slice;
  res.slices = runtime->stats().slices;
  res.unfinished = cluster.unfinishedProcesses().size();
  res.reduced = *reduced;
  const verify::VerifyReport* report = runtime->verifyAudit();
  res.verify_findings = report ? report->findings.size() : 99;
  return res;
}

TEST(TreeBasic, RootTouchesRacksNotNodes) {
  const TreeRunOut flat = runTree64(0);
  const TreeRunOut tree = runTree64(8);  // 8 racks of 8

  // Both complete the same workload cleanly.
  EXPECT_EQ(flat.unfinished, 0u);
  EXPECT_EQ(tree.unfinished, 0u);
  EXPECT_EQ(flat.reduced, 64ll * 65 / 2);
  EXPECT_EQ(tree.reduced, 64ll * 65 / 2);
  EXPECT_EQ(flat.verify_findings, 0u);
  EXPECT_EQ(tree.verify_findings, 0u);

  // Structure gauges.
  EXPECT_EQ(flat.tree_levels, 1u);
  EXPECT_EQ(tree.tree_levels, 2u);
  EXPECT_EQ(flat.coalesced_acks, 0u);
  EXPECT_GT(tree.coalesced_acks, 0u);

  // The aggregation win: per slice the flat root touches >= 64 strobe
  // destinations per microphase plus its completion polls; the tree root
  // touches 8 strobes + 8 acks per microphase.
  EXPECT_GE(flat.fanout_msgs, 5u * 64u);
  EXPECT_EQ(tree.fanout_msgs, 5u * (8u + 8u));
  EXPECT_LT(tree.fanout_msgs * 3, flat.fanout_msgs);
}

TEST(TreeBasic, ReplayIsByteIdentical) {
  const TreeRunOut a = runTree64(8);
  const TreeRunOut b = runTree64(8);
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.slices, b.slices);
  EXPECT_EQ(a.coalesced_acks, b.coalesced_acks);
}

TEST(TreeBasic, RaggedLastRackCompletes) {
  // 64 nodes at fanout 24: racks of 24, 24 and 16 — the last rack is
  // partial, so the ack gating must count members, not the fanout.
  const TreeRunOut ragged = runTree64(24);
  EXPECT_EQ(ragged.unfinished, 0u);
  EXPECT_EQ(ragged.reduced, 64ll * 65 / 2);
  EXPECT_EQ(ragged.fanout_msgs, 5u * (3u + 3u));
  EXPECT_EQ(ragged.verify_findings, 0u);
}

// ---------------------------------------------------------------------------
// Rack SS crash mid-microphase (member-led election)
// ---------------------------------------------------------------------------

struct RackCrashOut {
  std::string trace;
  std::vector<sim::TraceRecord> records;
  std::uint64_t elections = 0;
  std::uint64_t watchdog_fires = 0;
  std::uint64_t epoch = 0;
  int strobe_node = -1;
  std::size_t unfinished = 99;
  std::vector<int> errors;
};

/// 16 nodes, fanout 4: racks {0-3, 4-7, 8-11, 12-15}, rack SSes {0,4,8,12}.
/// Node 4 (SS of rack 1, never the root) crashes at `crash_at`.  Heartbeats
/// are deliberately SLOW (4.5 ms to a death declaration) against a 2 ms
/// watchdog horizon, so the member-led election must repair the rack well
/// before eviction does — that election path is what this test pins down.
/// Eviction still arrives later to fail the dead node's traffic and let the
/// run terminate.
RackCrashOut runRackSsCrash(SimTime crash_at) {
  const int P = 16;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 31337;
  if (crash_at >= 0) ccfg.faults.crashNode(4, crash_at);
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg(4);
  cfg.watchdog_slices = 4;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(1500);
  storm::Storm storm(cluster, scfg);
  wireControlPlane(storm, *runtime);
  storm.startHeartbeats();
  cluster.engine().at(msec(60), [&storm] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  std::vector<int> errors(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> out(1024), in(1024);
    for (int round = 0; round < 12; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), (me + 1) % P, round);
      auto rreq = comm.irecv(in.data(), in.size(), (me + P - 1) % P, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      if (ss.error != mpi::kSuccess || rs.error != mpi::kSuccess) {
        ++errors[static_cast<std::size_t>(me)];
      }
    }
  });
  cluster.run();

  RackCrashOut out;
  out.trace = cluster.trace().dump();
  out.records = cluster.trace().records();
  out.elections = runtime->stats().elections;
  out.watchdog_fires = runtime->stats().watchdog_fires;
  out.epoch = runtime->controlEpoch();
  out.strobe_node = runtime->strobeNode();
  out.unfinished = cluster.unfinishedProcesses().size();
  out.errors = errors;
  return out;
}

TEST(TreeRackSsCrash, MemberPromotedMidMicrophase) {
  // Pin the crash just after a mid-run MSM strobe, so the rack SS dies with
  // the relay/ack of that exact microphase in flight.
  const RackCrashOut ref = runRackSsCrash(-1);
  ASSERT_EQ(ref.elections, 0u);
  SimTime strobe_at = -1;
  for (const sim::TraceRecord& r : ref.records) {
    if (r.category == sim::TraceCategory::kStrobe && r.time >= msec(3) &&
        r.message.rfind("microstrobe MSM ", 0) == 0) {
      strobe_at = r.time;
      break;
    }
  }
  ASSERT_GE(strobe_at, 0) << "no mid-run MSM strobe found";

  const RackCrashOut a = runRackSsCrash(strobe_at + usec(1));

  // The rack members noticed the silence (their watchdogs fired), but an
  // epoch claim cannot succeed while the dead SS still sits in the live
  // set — exactly like flat mode, the claim retries until the heartbeat
  // eviction lands.  The eviction itself repairs the rack first: the lowest
  // surviving member is promoted rack SS from within the rack and the
  // interrupted microphase is re-strobed, so the claim finds strobes
  // flowing again and stands down without ever bumping the epoch.
  EXPECT_GE(a.watchdog_fires, 1u);
  EXPECT_EQ(a.elections, 0u);
  EXPECT_EQ(a.epoch, 0u);
  const std::size_t promoted = std::count_if(
      a.records.begin(), a.records.end(), [](const sim::TraceRecord& r) {
        return r.category == sim::TraceCategory::kFailover &&
               r.message.find("promoted to rack Strobe Sender of rack 1") !=
                   std::string::npos;
      });
  EXPECT_GE(promoted, 1u);
  // The root never died: no backup-root election.
  const std::size_t root_elected = std::count_if(
      a.records.begin(), a.records.end(), [](const sim::TraceRecord& r) {
        return r.category == sim::TraceCategory::kFailover &&
               r.message.find("elected backup root") != std::string::npos;
      });
  EXPECT_EQ(root_elected, 0u);

  // Ranks that never talk to the dead node ran all 12 rounds cleanly; only
  // the dead node's own fiber is stranded (its neighbours' requests fail in
  // error once the heartbeat eviction lands).
  int clean = 0;
  for (int r = 0; r < 16; ++r) {
    if (r >= 3 && r <= 5) continue;  // ring neighbourhood of the dead node
    clean += (a.errors[static_cast<std::size_t>(r)] == 0) ? 1 : 0;
  }
  EXPECT_EQ(clean, 13);
  EXPECT_EQ(a.unfinished, 1u);

  // Replay: byte-identical.
  const RackCrashOut b = runRackSsCrash(strobe_at + usec(1));
  EXPECT_EQ(a.trace, b.trace);
}

// ---------------------------------------------------------------------------
// Root SS crash (rack-SS-led election)
// ---------------------------------------------------------------------------

struct RootCrashOut {
  std::string trace;
  std::vector<sim::TraceRecord> records;
  std::uint64_t elections = 0;
  std::uint64_t epoch = 0;
  int strobe_node = -1;
  int mm_node = -1;
  std::size_t unfinished = 99;
  int errors = 0;
};

/// 16 nodes, fanout 4.  The management node (initial root SS and Machine
/// Manager) crashes at `crash_at`; the SS of rack 0 (node 0) must elect
/// itself backup root and re-collect the interrupted microphase's acks.
RootCrashOut runRootCrash(SimTime crash_at) {
  const int P = 16;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 90210;
  if (crash_at >= 0) ccfg.faults.crashManagementNode(crash_at);
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg(4);
  cfg.watchdog_slices = 4;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  wireControlPlane(storm, *runtime);
  storm.startHeartbeats();
  cluster.engine().at(msec(60), [&storm] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  auto errors = std::make_shared<int>(0);
  bcsmpi::launchJob(*runtime, map, [&, errors](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> out(1024), in(1024);
    for (int round = 0; round < 12; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), (me + 1) % P, round);
      auto rreq = comm.irecv(in.data(), in.size(), (me + P - 1) % P, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      if (ss.error != mpi::kSuccess || rs.error != mpi::kSuccess) ++*errors;
    }
  });
  cluster.run();

  RootCrashOut out;
  out.trace = cluster.trace().dump();
  out.records = cluster.trace().records();
  out.elections = runtime->stats().elections;
  out.epoch = runtime->controlEpoch();
  out.strobe_node = runtime->strobeNode();
  out.mm_node = storm.machineManagerNode();
  out.unfinished = cluster.unfinishedProcesses().size();
  out.errors = *errors;
  return out;
}

TEST(TreeRootCrash, RackSsElectedBackupRoot) {
  const RootCrashOut ref = runRootCrash(-1);
  ASSERT_EQ(ref.elections, 0u);
  SimTime strobe_at = -1;
  for (const sim::TraceRecord& r : ref.records) {
    if (r.category == sim::TraceCategory::kStrobe && r.time >= msec(3) &&
        r.message.rfind("microstrobe P2P ", 0) == 0) {
      strobe_at = r.time;
      break;
    }
  }
  ASSERT_GE(strobe_at, 0) << "no mid-run P2P strobe found";

  const RootCrashOut a = runRootCrash(strobe_at + usec(1));

  // All ranks live on compute nodes: the root's death costs coordination
  // only.  Node 0 — SS of the lowest live rack — takes both roles.
  EXPECT_EQ(a.unfinished, 0u);
  EXPECT_EQ(a.errors, 0);
  EXPECT_EQ(a.elections, 1u);
  EXPECT_EQ(a.epoch, 1u);
  EXPECT_EQ(a.strobe_node, 0);
  EXPECT_EQ(a.mm_node, 0);
  const std::size_t root_elected = std::count_if(
      a.records.begin(), a.records.end(), [](const sim::TraceRecord& r) {
        return r.category == sim::TraceCategory::kFailover &&
               r.message.find("elected backup root Strobe Sender") !=
                   std::string::npos;
      });
  EXPECT_EQ(root_elected, 1u);

  const RootCrashOut b = runRootCrash(strobe_at + usec(1));
  EXPECT_EQ(a.trace, b.trace);
}

// ---------------------------------------------------------------------------
// Simultaneous rack-SS + root loss in the 32-node fault soup
// ---------------------------------------------------------------------------

struct TreeSoupOut {
  std::string trace;
  std::uint64_t elections = 0;
  std::uint64_t evictions = 0;
  std::uint64_t epoch = 0;
  std::size_t unfinished = 99;
  std::vector<int> completed, failed;
};

/// 32 nodes, fanout 8: racks {0-7, 8-15, 16-23, 24-31}.  Node 8 (SS of
/// rack 1) and the management node (the root) both die in one run while 5%
/// of droppable packets are lost: the rack SS first (heartbeats declare it
/// and the rack promotes node 9 from within), then the root before the
/// machine has settled (an epoch claim needs the dead rack SS already out
/// of the live quorum, exactly as in flat mode).  Rack repair and root
/// election must serialize through the single global epoch.
TreeSoupOut runTreeSoup() {
  const int P = 32;
  const int rounds = 20;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 20260808;
  ccfg.faults.dropRate(0.05);
  ccfg.faults.crashNode(8, msec(5));
  ccfg.faults.crashManagementNode(msec(9));
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg(8);
  cfg.watchdog_slices = 6;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  wireControlPlane(storm, *runtime);
  storm.startHeartbeats();
  cluster.engine().at(msec(200), [&storm] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);

  TreeSoupOut out;
  out.completed.assign(P, 0);
  out.failed.assign(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> snd(2048), rcv(2048);
    for (int round = 0; round < rounds; ++round) {
      const int partner = me ^ (1 + (round % 7));
      if (partner >= P) continue;
      auto sreq = comm.isend(snd.data(), snd.size(), partner, round);
      auto rreq = comm.irecv(rcv.data(), rcv.size(), partner, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      auto& cell = (ss.error == mpi::kSuccess && rs.error == mpi::kSuccess)
                       ? out.completed
                       : out.failed;
      ++cell[static_cast<std::size_t>(me)];
    }
  });
  cluster.run();

  out.trace = cluster.trace().dump();
  out.elections = runtime->stats().elections;
  out.evictions = runtime->stats().evictions;
  out.epoch = runtime->controlEpoch();
  out.unfinished = cluster.unfinishedProcesses().size();
  return out;
}

TEST(TreeSoup, SimultaneousRackAndRootLossResolves) {
  const TreeSoupOut a = runTreeSoup();

  // Only the crashed compute node's rank is stranded; every survivor drove
  // all 20 rounds to an outcome under the repaired control plane.
  EXPECT_EQ(a.unfinished, 1u);
  for (int r = 0; r < 32; ++r) {
    if (r == 8) continue;
    EXPECT_EQ(a.completed[static_cast<std::size_t>(r)] +
                  a.failed[static_cast<std::size_t>(r)],
              20)
        << "rank " << r;
  }
  // The dead rack SS was heartbeat-evicted; the dead root cost at least one
  // election (the rack-level repair may resolve via eviction first, so the
  // exact count is plan-dependent — the epoch pins the total).
  EXPECT_GE(a.evictions, 1u);
  EXPECT_GE(a.elections, 1u);
  EXPECT_EQ(a.epoch, a.elections);
}

// ---------------------------------------------------------------------------
// Tree-aware finalize audit: a stuck coalesced ack is reported per rack
// ---------------------------------------------------------------------------

TEST(TreeAudit, StuckCoalescedAckReportedWithRackProvenance) {
  // 16 nodes, fanout 4; node 4 (SS of rack 1) crashes with failover fully
  // disabled (no watchdogs, no heartbeats), so rack 1's coalesced ack for
  // the interrupted microphase can never reach the root and the machine
  // deadlocks.  The finalize audit must pin the leak on rack 1.
  const int P = 16;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 4242;
  ccfg.faults.crashNode(4, sim::msec(3));
  net::Cluster cluster(ccfg);

  bcsmpi::BcsMpiConfig cfg = quickCfg(4);
  cfg.watchdog_slices = 0;
  cfg.verify = true;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> out(512), in(512);
    for (int round = 0; round < 20; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), (me + 1) % P, round);
      auto rreq = comm.irecv(in.data(), in.size(), (me + P - 1) % P, round);
      comm.wait(sreq, nullptr);
      comm.wait(rreq, nullptr);
    }
  });
  cluster.run();

  // The run deadlocked (every surviving rank is stuck waiting); audit it.
  ASSERT_GT(cluster.unfinishedProcesses().size(), 0u);
  const verify::VerifyReport* report = runtime->verifyAudit();
  ASSERT_NE(report, nullptr);
  EXPECT_GT(report->counts[static_cast<int>(verify::Category::kLeakedAck)],
            0u);
  bool rack1_reported = false;
  for (const verify::Finding& f : report->findings) {
    if (f.category != verify::Category::kLeakedAck) continue;
    if (f.detail.find("rack 1") != std::string::npos) rack1_reported = true;
  }
  EXPECT_TRUE(rack1_reported);
}

TEST(TreeSoup, ReplayIsByteIdentical) {
  const TreeSoupOut a = runTreeSoup();
  const TreeSoupOut b = runTreeSoup();
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.elections, b.elections);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
}

}  // namespace
