// Tests for the shared MPI facade layer: datatypes, reduction kernels
// (host vs NIC-softfloat flavours, parameterized across ops and types),
// and the composed v-variant collectives on both implementations.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <tuple>
#include <vector>

#include "baseline/baseline.hpp"
#include "bcsmpi/comm.hpp"
#include "mpi/reduce_ops.hpp"
#include "mpi/types.hpp"
#include "net/cluster.hpp"

namespace {

using namespace bcs;
using mpi::Datatype;
using mpi::ReduceFlavor;
using mpi::ReduceOp;

TEST(Types, DatatypeSizes) {
  EXPECT_EQ(datatypeSize(Datatype::kByte), 1u);
  EXPECT_EQ(datatypeSize(Datatype::kInt32), 4u);
  EXPECT_EQ(datatypeSize(Datatype::kInt64), 8u);
  EXPECT_EQ(datatypeSize(Datatype::kFloat32), 4u);
  EXPECT_EQ(datatypeSize(Datatype::kFloat64), 8u);
}

TEST(Types, NamesAreStable) {
  EXPECT_STREQ(datatypeName(Datatype::kFloat64), "float64");
  EXPECT_STREQ(reduceOpName(ReduceOp::kSum), "sum");
  EXPECT_STREQ(reduceOpName(ReduceOp::kMax), "max");
}

// ---- applyReduce across (op, flavor), parameterized ----

class ReduceKernel
    : public ::testing::TestWithParam<std::tuple<ReduceOp, ReduceFlavor>> {};

TEST_P(ReduceKernel, Int64Elementwise) {
  const auto [op, flavor] = GetParam();
  std::vector<std::int64_t> acc{5, -3, 100, 0};
  const std::vector<std::int64_t> in{2, 7, -100, 0};
  mpi::applyReduce(op, Datatype::kInt64, acc.data(), in.data(), 4, flavor);
  switch (op) {
    case ReduceOp::kSum:
      EXPECT_EQ(acc, (std::vector<std::int64_t>{7, 4, 0, 0}));
      break;
    case ReduceOp::kProd:
      EXPECT_EQ(acc, (std::vector<std::int64_t>{10, -21, -10000, 0}));
      break;
    case ReduceOp::kMin:
      EXPECT_EQ(acc, (std::vector<std::int64_t>{2, -3, -100, 0}));
      break;
    case ReduceOp::kMax:
      EXPECT_EQ(acc, (std::vector<std::int64_t>{5, 7, 100, 0}));
      break;
  }
}

TEST_P(ReduceKernel, Float64FlavorsAgreeBitwise) {
  const auto [op, flavor] = GetParam();
  (void)flavor;  // this test compares the two flavours directly
  std::vector<double> a{0.1, -2.5, 1e300, 5e-324, 3.0};
  std::vector<double> b{0.2, 2.5, 1e300, 5e-324, -1.5};
  auto host = a;
  auto nic = a;
  mpi::applyReduce(op, Datatype::kFloat64, host.data(), b.data(), a.size(),
                   ReduceFlavor::kHost);
  mpi::applyReduce(op, Datatype::kFloat64, nic.data(), b.data(), a.size(),
                   ReduceFlavor::kNicSoftFloat);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(host[i]),
              std::bit_cast<std::uint64_t>(nic[i]))
        << "elem " << i << " op " << reduceOpName(op);
  }
}

TEST_P(ReduceKernel, Float32FlavorsAgreeBitwise) {
  const auto [op, flavor] = GetParam();
  (void)flavor;
  std::vector<float> a{0.1f, -2.5f, 3e38f, 1e-40f};
  std::vector<float> b{0.2f, 2.5f, 3e38f, -1e-40f};
  auto host = a;
  auto nic = a;
  mpi::applyReduce(op, Datatype::kFloat32, host.data(), b.data(), a.size(),
                   ReduceFlavor::kHost);
  mpi::applyReduce(op, Datatype::kFloat32, nic.data(), b.data(), a.size(),
                   ReduceFlavor::kNicSoftFloat);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(host[i]),
              std::bit_cast<std::uint32_t>(nic[i]))
        << "elem " << i << " op " << reduceOpName(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAndFlavors, ReduceKernel,
    ::testing::Combine(::testing::Values(ReduceOp::kSum, ReduceOp::kProd,
                                         ReduceOp::kMin, ReduceOp::kMax),
                       ::testing::Values(ReduceFlavor::kHost,
                                         ReduceFlavor::kNicSoftFloat)),
    [](const auto& info) {
      return std::string(reduceOpName(std::get<0>(info.param))) +
             (std::get<1>(info.param) == ReduceFlavor::kHost ? "_host"
                                                             : "_nic");
    });

// ---- composed v-variant collectives on both implementations ----

class VariantCollectives : public ::testing::TestWithParam<bool> {
 protected:
  void run(const std::function<void(mpi::Comm&)>& body, int nprocs = 5) {
    net::ClusterConfig ccfg;
    ccfg.num_compute_nodes = nprocs;
    net::Cluster cluster(ccfg);
    std::vector<int> map(static_cast<std::size_t>(nprocs));
    std::iota(map.begin(), map.end(), 0);
    if (GetParam()) {
      bcsmpi::BcsMpiConfig cfg;
      cfg.runtime_init_overhead = sim::usec(50);
      bcsmpi::runJob(cluster, cfg, map, body);
    } else {
      baseline::BaselineConfig cfg;
      cfg.init_overhead = sim::usec(10);
      baseline::runJob(cluster, cfg, map, body);
    }
  }
};

TEST_P(VariantCollectives, ScattervUnevenCounts) {
  run([](mpi::Comm& comm) {
    const int P = comm.size();
    const int root = 1;
    // Rank r receives r+1 ints: 1, 2, 3, ...
    std::vector<int> send_buf;
    std::vector<std::size_t> counts, displs;
    if (comm.rank() == root) {
      std::size_t off = 0;
      for (int r = 0; r < P; ++r) {
        counts.push_back((static_cast<std::size_t>(r) + 1) * sizeof(int));
        displs.push_back(off * sizeof(int));
        for (int k = 0; k <= r; ++k) send_buf.push_back(100 * r + k);
        off += static_cast<std::size_t>(r) + 1;
      }
    }
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1, -1);
    comm.scatterv(send_buf.data(), counts, displs, mine.data(),
                  mine.size() * sizeof(int), root);
    for (int k = 0; k <= comm.rank(); ++k) {
      EXPECT_EQ(mine[static_cast<std::size_t>(k)], 100 * comm.rank() + k);
    }
  });
}

TEST_P(VariantCollectives, GathervUnevenCounts) {
  run([](mpi::Comm& comm) {
    const int P = comm.size();
    const int root = 2;
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1);
    for (int k = 0; k <= comm.rank(); ++k) {
      mine[static_cast<std::size_t>(k)] = 10 * comm.rank() + k;
    }
    std::vector<std::size_t> counts, displs;
    std::vector<int> gathered;
    if (comm.rank() == root) {
      std::size_t off = 0;
      for (int r = 0; r < P; ++r) {
        counts.push_back((static_cast<std::size_t>(r) + 1) * sizeof(int));
        displs.push_back(off * sizeof(int));
        off += static_cast<std::size_t>(r) + 1;
      }
      gathered.assign(off, -1);
    }
    comm.gatherv(mine.data(), mine.size() * sizeof(int), gathered.data(),
                 counts, displs, root);
    if (comm.rank() == root) {
      std::size_t idx = 0;
      for (int r = 0; r < P; ++r) {
        for (int k = 0; k <= r; ++k) {
          EXPECT_EQ(gathered[idx++], 10 * r + k);
        }
      }
    }
  });
}

TEST_P(VariantCollectives, AllgathervAndAlltoallv) {
  run([](mpi::Comm& comm) {
    const int P = comm.size();
    const int r = comm.rank();
    // allgatherv: rank r contributes r+1 bytes.
    std::vector<std::size_t> counts, displs;
    std::size_t total = 0;
    for (int i = 0; i < P; ++i) {
      counts.push_back(static_cast<std::size_t>(i) + 1);
      displs.push_back(total);
      total += static_cast<std::size_t>(i) + 1;
    }
    std::vector<std::uint8_t> mine(static_cast<std::size_t>(r) + 1,
                                   static_cast<std::uint8_t>(r + 1));
    std::vector<std::uint8_t> all(total, 0);
    comm.allgatherv(mine.data(), mine.size(), all.data(), counts, displs);
    for (int i = 0; i < P; ++i) {
      for (std::size_t k = 0; k < counts[static_cast<std::size_t>(i)]; ++k) {
        EXPECT_EQ(all[displs[static_cast<std::size_t>(i)] + k], i + 1);
      }
    }
    // alltoallv: rank r sends (r + d + 1) bytes of value (10r + d) to d.
    std::vector<std::size_t> scounts, sdispls, rcounts, rdispls;
    std::size_t soff = 0, roff = 0;
    for (int d = 0; d < P; ++d) {
      scounts.push_back(static_cast<std::size_t>(r + d) + 1);
      sdispls.push_back(soff);
      soff += scounts.back();
      rcounts.push_back(static_cast<std::size_t>(d + r) + 1);
      rdispls.push_back(roff);
      roff += rcounts.back();
    }
    std::vector<std::uint8_t> sbuf(soff), rbuf(roff, 0);
    for (int d = 0; d < P; ++d) {
      for (std::size_t k = 0; k < scounts[static_cast<std::size_t>(d)]; ++k) {
        sbuf[sdispls[static_cast<std::size_t>(d)] + k] =
            static_cast<std::uint8_t>(10 * r + d);
      }
    }
    comm.alltoallv(sbuf.data(), scounts, sdispls, rbuf.data(), rcounts,
                   rdispls);
    for (int s = 0; s < P; ++s) {
      for (std::size_t k = 0; k < rcounts[static_cast<std::size_t>(s)]; ++k) {
        EXPECT_EQ(rbuf[rdispls[static_cast<std::size_t>(s)] + k],
                  static_cast<std::uint8_t>(10 * s + r));
      }
    }
  });
}

TEST_P(VariantCollectives, TestallIsAllOrNothing) {
  run([](mpi::Comm& comm) {
    if (comm.size() < 2) return;
    if (comm.rank() == 0) {
      int a = 1, b = 2;
      // Send only the first now; the second after a long delay.
      comm.send(&a, sizeof a, 1, 0);
      comm.compute(sim::msec(8));
      comm.send(&b, sizeof b, 1, 1);
    } else if (comm.rank() == 1) {
      int a = 0, b = 0;
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.irecv(&a, sizeof a, 0, 0));
      reqs.push_back(comm.irecv(&b, sizeof b, 0, 1));
      comm.compute(sim::msec(3));  // first has arrived, second has not
      EXPECT_FALSE(comm.testall(reqs));
      EXPECT_FALSE(reqs[0].null());  // all-or-nothing: nothing released
      comm.waitall(reqs);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST_P(VariantCollectives, NullRequestsAreNoOps) {
  run([](mpi::Comm& comm) {
    mpi::Request null_req;
    comm.wait(null_req);  // must not hang or throw
    EXPECT_TRUE(comm.test(null_req));
    std::vector<mpi::Request> reqs(3);
    comm.waitall(reqs);
    EXPECT_TRUE(comm.testall(reqs));
  });
}

INSTANTIATE_TEST_SUITE_P(BothImplementations, VariantCollectives,
                         ::testing::Bool(), [](const auto& info) {
                           return info.param ? std::string("bcsmpi")
                                             : std::string("baseline");
                         });

}  // namespace
