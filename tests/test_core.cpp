// Unit tests for the BCS core primitives: Xfer-And-Signal, Test-Event,
// Compare-And-Write (paper §2).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "bcs/core.hpp"
#include "net/cluster.hpp"

namespace {

using namespace bcs;
using core::BcsCore;
using core::CmpOp;
using sim::usec;

struct CoreFixture : ::testing::Test {
  net::ClusterConfig cfg;
  CoreFixture() { cfg.num_compute_nodes = 8; }
  net::Cluster cluster{cfg};
  BcsCore core{cluster.fabric()};
};

TEST_F(CoreFixture, GlobalVarsAreIndependentPerNode) {
  const auto v = core.allocVar("x", 5);
  for (int n = 0; n < 8; ++n) EXPECT_EQ(core.readVar(n, v), 5);
  core.writeVarLocal(3, v, 42);
  EXPECT_EQ(core.readVar(3, v), 42);
  EXPECT_EQ(core.readVar(2, v), 5);
}

TEST_F(CoreFixture, BadVarAndEventIdsThrow) {
  EXPECT_THROW(core.readVar(0, 99), sim::SimError);
  EXPECT_THROW(core.signalLocal(0, 42), sim::SimError);
}

TEST_F(CoreFixture, TestEventSeesLocalSignals) {
  const auto ev = core.allocEvent("e");
  EXPECT_FALSE(core.testEvent(0, ev));
  core.signalLocal(0, ev);
  EXPECT_TRUE(core.testEvent(0, ev));
  EXPECT_FALSE(core.testEvent(1, ev));  // per-node state
}

TEST_F(CoreFixture, WaitEventAsyncConsumesFifo) {
  const auto ev = core.allocEvent("e");
  std::vector<int> order;
  core.waitEventAsync(0, ev, [&] { order.push_back(1); });
  core.waitEventAsync(0, ev, [&] { order.push_back(2); });
  core.signalLocal(0, ev);
  cluster.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  core.signalLocal(0, ev);
  cluster.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(CoreFixture, SignalBeforeWaitIsNotLost) {
  const auto ev = core.allocEvent("e");
  core.signalLocal(0, ev, 2);
  int fired = 0;
  core.waitEventAsync(0, ev, [&] { ++fired; });
  core.waitEventAsync(0, ev, [&] { ++fired; });
  core.waitEventAsync(0, ev, [&] { ++fired; });
  cluster.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(core.pendingSignals(0, ev), 0);
}

TEST_F(CoreFixture, XferAndSignalMovesDataAndSignalsRemote) {
  const auto ev = core.allocEvent("arrived");
  std::vector<std::byte> src_buf(256, std::byte{7});
  std::vector<std::byte> dst_buf(256);
  core::XferRequest req;
  req.src_node = 0;
  req.dest_nodes = {3};
  req.bytes = src_buf.size();
  req.deliver = [&](int dest) {
    ASSERT_EQ(dest, 3);
    std::memcpy(dst_buf.data(), src_buf.data(), src_buf.size());
  };
  req.remote_event = ev;
  core.xferAndSignal(std::move(req));
  EXPECT_FALSE(core.testEvent(3, ev));  // non-blocking: nothing happened yet
  cluster.run();
  EXPECT_TRUE(core.testEvent(3, ev));
  EXPECT_EQ(dst_buf[100], std::byte{7});
}

TEST_F(CoreFixture, XferAndSignalLocalEventFiresOnCompletion) {
  const auto lev = core.allocEvent("local-done");
  const auto rev = core.allocEvent("remote");
  core::XferRequest req;
  req.src_node = 1;
  req.dest_nodes = {2, 3, 4};
  req.bytes = 1024;
  req.local_event = lev;
  req.remote_event = rev;
  core.xferAndSignal(std::move(req));
  cluster.run();
  EXPECT_EQ(core.pendingSignals(1, lev), 1);
  for (int n : {2, 3, 4}) EXPECT_EQ(core.pendingSignals(n, rev), 1);
}

TEST_F(CoreFixture, XferToEmptySetThrows) {
  core::XferRequest req;
  req.src_node = 0;
  EXPECT_THROW(core.xferAndSignal(std::move(req)), sim::SimError);
}

TEST_F(CoreFixture, CompareAndWriteTrueOnAllNodes) {
  const auto v = core.allocVar("flag", 1);
  const auto w = core.allocVar("out", 0);
  bool result = false;
  core::CompareAndWriteRequest req;
  req.src_node = 0;
  req.nodes = {0, 1, 2, 3};
  req.var = v;
  req.op = CmpOp::kEQ;
  req.value = 1;
  req.do_write = true;
  req.write_var = w;
  req.write_value = 99;
  core.compareAndWriteAsync(std::move(req), [&](bool ok) { result = ok; });
  cluster.run();
  EXPECT_TRUE(result);
  for (int n : {0, 1, 2, 3}) EXPECT_EQ(core.readVar(n, w), 99);
  EXPECT_EQ(core.readVar(4, w), 0);  // outside the destination set
}

TEST_F(CoreFixture, CompareAndWriteFalseOnOneNodeSkipsWrite) {
  const auto v = core.allocVar("flag", 1);
  const auto w = core.allocVar("out", 0);
  core.writeVarLocal(2, v, 0);  // one node disagrees
  bool result = true;
  core::CompareAndWriteRequest req;
  req.src_node = 0;
  req.nodes = {0, 1, 2, 3};
  req.var = v;
  req.op = CmpOp::kEQ;
  req.value = 1;
  req.do_write = true;
  req.write_var = w;
  req.write_value = 99;
  core.compareAndWriteAsync(std::move(req), [&](bool ok) { result = ok; });
  cluster.run();
  EXPECT_FALSE(result);
  for (int n : {0, 1, 2, 3}) EXPECT_EQ(core.readVar(n, w), 0);
}

TEST_F(CoreFixture, CompareAndWriteAllOperators) {
  using core::cmpEval;
  EXPECT_TRUE(cmpEval(CmpOp::kGE, 5, 5));
  EXPECT_TRUE(cmpEval(CmpOp::kGE, 6, 5));
  EXPECT_FALSE(cmpEval(CmpOp::kGE, 4, 5));
  EXPECT_TRUE(cmpEval(CmpOp::kLT, 4, 5));
  EXPECT_FALSE(cmpEval(CmpOp::kLT, 5, 5));
  EXPECT_TRUE(cmpEval(CmpOp::kEQ, 5, 5));
  EXPECT_FALSE(cmpEval(CmpOp::kEQ, 5, 6));
  EXPECT_TRUE(cmpEval(CmpOp::kNE, 5, 6));
  EXPECT_FALSE(cmpEval(CmpOp::kNE, 5, 5));
}

TEST_F(CoreFixture, BlockingPrimitivesWorkFromProcesses) {
  const auto ev = core.allocEvent("e");
  const auto v = core.allocVar("ready", 0);
  bool caw_result = false;
  sim::SimTime woke_at = -1;

  cluster.spawn(0, "waiter", [&](sim::Process& p) {
    core.testEventBlocking(p, ev);
    woke_at = p.now();
    core::CompareAndWriteRequest req;
    req.src_node = 0;
    req.nodes = {0, 1};
    req.var = v;
    req.op = CmpOp::kGE;
    req.value = 1;
    caw_result = core.compareAndWriteBlocking(p, std::move(req));
  });
  cluster.engine().at(usec(50), [&] {
    core.writeVarLocal(0, v, 1);
    core.writeVarLocal(1, v, 1);
    core.signalLocal(0, ev);
  });
  cluster.run();
  EXPECT_TRUE(cluster.allProcessesFinished());
  EXPECT_EQ(woke_at, usec(50));
  EXPECT_TRUE(caw_result);
}

TEST_F(CoreFixture, MicrostrobePattern) {
  // The SS/SR pattern from §4.2: the management node multicasts a strobe
  // (Xfer-And-Signal) and polls completion flags with Compare-And-Write.
  const int mgmt = cluster.managementNode();
  const auto strobe_ev = core.allocEvent("strobe");
  const auto done_var = core.allocVar("phase-done", 0);

  std::vector<int> compute_nodes;
  for (int n = 0; n < cluster.numComputeNodes(); ++n) {
    compute_nodes.push_back(n);
  }

  // Each compute node: when strobed, do "work", then set its done flag.
  for (int n : compute_nodes) {
    core.waitEventAsync(n, strobe_ev, [this, n, done_var] {
      cluster.engine().after(usec(30), [this, n, done_var] {
        core.writeVarLocal(n, done_var, 1);
      });
    });
  }

  core::XferRequest strobe;
  strobe.src_node = mgmt;
  strobe.dest_nodes = compute_nodes;
  strobe.bytes = 8;
  strobe.remote_event = strobe_ev;
  core.xferAndSignal(std::move(strobe));

  // Management node polls until all flags are set.
  bool all_done = false;
  std::function<void()> poll = [&] {
    core::CompareAndWriteRequest req;
    req.src_node = mgmt;
    req.nodes = compute_nodes;
    req.var = done_var;
    req.op = CmpOp::kEQ;
    req.value = 1;
    core.compareAndWriteAsync(std::move(req), [&](bool ok) {
      if (ok) {
        all_done = true;
      } else {
        cluster.engine().after(usec(5), poll);
      }
    });
  };
  poll();
  cluster.run();
  EXPECT_TRUE(all_done);
}

}  // namespace
