// Slice-boundary checkpoint/restore (src/snapshot, DESIGN.md §8).
//
// The contract under test: capture() at a slice boundary is pure
// observation, and restore() into a *fresh process-equivalent stack*
// continues byte-identically — the crash-and-restore drill asserts
//
//   prefix(B, len@capture) + C  ==  A
//
// where A is the uninterrupted run, B the checkpointed run killed mid-
// flight, and C the restored continuation.  Negative paths (truncation,
// corruption, version/fingerprint skew) must fail as structured
// SnapshotErrors, never as UB — this test runs under the sanitize preset
// (label `ckpt`).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/checkpoint.hpp"
#include "snapshot/error.hpp"
#include "snapshot/format.hpp"
#include "snapshot/scenario.hpp"
#include "snapshot/state_io.hpp"

namespace {

using namespace bcs;
using snapshot::ScenarioSpec;
using snapshot::Simulation;
using snapshot::SnapshotError;

// ---------------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------------

TEST(SnapshotFormat, RoundTripsSections) {
  snapshot::SnapshotWriter w;
  const std::string alpha(10000, 'a');
  w.addSection("alpha", alpha);
  w.addSection("beta", std::string("\x00\x01\x02 binary", 10));
  const std::vector<std::uint8_t> blob = w.finish(0xfeedfacedeadbeefull);

  snapshot::SnapshotReader r(blob);
  EXPECT_EQ(r.fingerprint(), 0xfeedfacedeadbeefull);
  ASSERT_EQ(r.sections().size(), 2u);
  EXPECT_TRUE(r.hasSection("alpha"));
  EXPECT_TRUE(r.hasSection("beta"));
  EXPECT_FALSE(r.hasSection("gamma"));
  EXPECT_EQ(r.section("alpha"), alpha);
  EXPECT_EQ(r.section("beta"), std::string("\x00\x01\x02 binary", 10));
  // Repetitive payloads actually compress on disk.
  EXPECT_LT(r.sections()[0].comp_size, r.sections()[0].raw_size / 4);
}

TEST(SnapshotFormat, RejectsBadMagic) {
  snapshot::SnapshotWriter w;
  w.addSection("s", "payload");
  std::vector<std::uint8_t> blob = w.finish(1);
  blob[0] ^= 0xff;
  try {
    snapshot::SnapshotReader r(blob);
    FAIL() << "bad magic accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST(SnapshotFormat, RejectsVersionSkew) {
  snapshot::SnapshotWriter w;
  w.addSection("s", "payload");
  std::vector<std::uint8_t> blob = w.finish(1);
  blob[4] = 9;  // format version lives right after the 4-byte magic
  try {
    snapshot::SnapshotReader r(blob);
    FAIL() << "version skew accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SnapshotFormat, RejectsTruncation) {
  snapshot::SnapshotWriter w;
  w.addSection("s", std::string(5000, 'q'));
  const std::vector<std::uint8_t> blob = w.finish(1);
  // Every prefix must be rejected loudly — header-level cuts and
  // payload-level cuts alike (ASan/UBSan guard the bounds checks).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{11}, std::size_t{30},
        blob.size() - 1}) {
    std::vector<std::uint8_t> cut(blob.begin(),
                                  blob.begin() + static_cast<long>(keep));
    EXPECT_THROW(snapshot::SnapshotReader r(cut), SnapshotError)
        << "accepted a " << keep << "-byte prefix";
  }
}

TEST(SnapshotFormat, RejectsFlippedPayloadBit) {
  snapshot::SnapshotWriter w;
  w.addSection("s", std::string(5000, 'q'));
  std::vector<std::uint8_t> blob = w.finish(1);
  blob.back() ^= 0x01;  // payload corruption -> per-section CRC mismatch
  snapshot::SnapshotReader r(blob);  // table itself is intact
  try {
    (void)r.section("s");
    FAIL() << "corrupted payload accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "s");
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Capture guards and restore preconditions
// ---------------------------------------------------------------------------

TEST(SnapshotCapture, RefusesLiveFibers) {
  Simulation sim = snapshot::build(snapshot::ckptRing());
  sim.cluster->spawn(0, "fiber", [](sim::Process& p) { p.compute(100); });
  try {
    (void)snapshot::capture(sim);
    FAIL() << "captured a simulation with process fibers";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "capture");
    EXPECT_NE(std::string(e.what()).find("fiber"), std::string::npos);
  }
}

TEST(SnapshotRestore, RefusesFingerprintMismatch) {
  ScenarioSpec spec = snapshot::ckptRing();
  spec.mpi.checkpoint_every_slices = 2;
  Simulation b = snapshot::build(spec);
  std::vector<std::uint8_t> blob;
  b.runtime->setSnapshotSink(
      [&b, &blob](std::uint64_t) { blob = snapshot::capture(b); });
  b.cluster->run(sim::msec(2));
  ASSERT_FALSE(blob.empty());

  ScenarioSpec other = spec;
  other.cluster.num_compute_nodes = 9;  // machine shape differs
  try {
    (void)snapshot::restore(other, blob);
    FAIL() << "restored into a different machine shape";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }

  // A FaultPlan difference is NOT a fingerprint mismatch (branching replay).
  ScenarioSpec branch = spec;
  branch.cluster.faults.crashNode(3, sim::msec(10));
  EXPECT_NO_THROW({ Simulation c = snapshot::restore(branch, blob); });
}

TEST(SnapshotRestore, RejectsCorruptedBlobEndToEnd) {
  ScenarioSpec spec = snapshot::ckptRing();
  spec.mpi.checkpoint_every_slices = 2;
  Simulation b = snapshot::build(spec);
  std::vector<std::uint8_t> blob;
  b.runtime->setSnapshotSink(
      [&b, &blob](std::uint64_t) { blob = snapshot::capture(b); });
  b.cluster->run(sim::msec(2));
  ASSERT_FALSE(blob.empty());

  std::vector<std::uint8_t> corrupt = blob;
  corrupt[corrupt.size() - 2] ^= 0x10;
  EXPECT_THROW((void)snapshot::restore(spec, corrupt), SnapshotError);

  std::vector<std::uint8_t> cut(blob.begin(),
                                blob.begin() + static_cast<long>(40));
  EXPECT_THROW((void)snapshot::restore(spec, cut), SnapshotError);
}

// ---------------------------------------------------------------------------
// Crash-and-restore drills
// ---------------------------------------------------------------------------

struct DrillCase {
  const char* name;
  ScenarioSpec (*make)(bool verify);
  bool verify;
  std::uint64_t every;     ///< checkpoint_every_slices
  sim::SimTime kill;       ///< when the checkpointed run is killed
  sim::SimTime end;        ///< horizon for bounded runs; 0 = run to drain
};

void runUntil(Simulation& sim, sim::SimTime end) {
  if (end > 0) {
    sim.cluster->run(end);
  } else {
    sim.cluster->run();
  }
}

/// Every counter except the checkpoint bookkeeping itself: A never captures
/// (no sink installed), so checkpoints_taken/restores legitimately differ.
void expectStatsMatch(const Simulation& a, const Simulation& c) {
  const bcsmpi::RuntimeStats& sa = a.runtime->stats();
  const bcsmpi::RuntimeStats& sc = c.runtime->stats();
  EXPECT_EQ(sa.slices, sc.slices);
  EXPECT_EQ(sa.microstrobes, sc.microstrobes);
  EXPECT_EQ(sa.descriptors_exchanged, sc.descriptors_exchanged);
  EXPECT_EQ(sa.matches, sc.matches);
  EXPECT_EQ(sa.chunks_transferred, sc.chunks_transferred);
  EXPECT_EQ(sa.collectives_scheduled, sc.collectives_scheduled);
  EXPECT_EQ(sa.slice_overruns, sc.slice_overruns);
  EXPECT_EQ(sa.retransmits, sc.retransmits);
  EXPECT_EQ(sa.requests_failed, sc.requests_failed);
  EXPECT_EQ(sa.evictions, sc.evictions);
  EXPECT_EQ(sa.recovery_slices, sc.recovery_slices);
  EXPECT_EQ(sa.watchdog_fires, sc.watchdog_fires);
  EXPECT_EQ(sa.elections, sc.elections);
  EXPECT_EQ(sa.rejoins, sc.rejoins);
  EXPECT_EQ(sa.tree_levels, sc.tree_levels);
  EXPECT_EQ(sa.coalesced_acks, sc.coalesced_acks);
  EXPECT_EQ(sa.fanout_msgs_per_slice, sc.fanout_msgs_per_slice);

  const net::FabricStats fa = a.cluster->fabric().stats();
  const net::FabricStats fc = c.cluster->fabric().stats();
  EXPECT_EQ(fa.unicasts, fc.unicasts);
  EXPECT_EQ(fa.multicasts, fc.multicasts);
  EXPECT_EQ(fa.conditionals, fc.conditionals);
  EXPECT_EQ(fa.payload_bytes, fc.payload_bytes);
  EXPECT_EQ(fa.drops, fc.drops);
  EXPECT_EQ(fa.failed_sends, fc.failed_sends);
  EXPECT_EQ(fa.suppressed_deliveries, fc.suppressed_deliveries);
  EXPECT_EQ(fa.suppressed_conditionals, fc.suppressed_conditionals);

  const sim::FaultStats& ja = a.cluster->faults()->stats();
  const sim::FaultStats& jc = c.cluster->faults()->stats();
  EXPECT_EQ(ja.drops, jc.drops);
  EXPECT_EQ(ja.degrades, jc.degrades);
  EXPECT_EQ(ja.forced_down, jc.forced_down);
}

class SnapshotDrill : public ::testing::TestWithParam<DrillCase> {};

TEST_P(SnapshotDrill, RestoredRunContinuesByteIdentically) {
  const DrillCase& tc = GetParam();
  ScenarioSpec spec = tc.make(tc.verify);
  spec.mpi.checkpoint_every_slices = tc.every;

  // A — the uninterrupted reference (no sink; the periodic hook is inert).
  Simulation a = snapshot::build(spec);
  runUntil(a, tc.end);
  const std::string a_dump = a.cluster->trace().dump();

  // B — checkpointed, then killed mid-flight.
  Simulation b = snapshot::build(spec);
  std::vector<std::uint8_t> blob;
  std::uint64_t blob_slice = 0;
  b.runtime->setSnapshotSink([&b, &blob, &blob_slice](std::uint64_t slice) {
    blob = snapshot::capture(b);
    blob_slice = slice;
  });
  b.cluster->run(tc.kill);
  ASSERT_FALSE(blob.empty()) << "no checkpoint before the kill point";
  EXPECT_GT(b.runtime->stats().checkpoints_taken, 0u);
  const std::string b_dump = b.cluster->trace().dump();
  const std::uint64_t prefix = snapshot::traceDumpBytesAt(blob);
  ASSERT_LE(prefix, b_dump.size());
  ASSERT_LE(prefix, a_dump.size());
  // The sink is pure observation: B's trace up to the capture instant is
  // byte-identical to the sink-less A's.
  ASSERT_EQ(b_dump.substr(0, static_cast<std::size_t>(prefix)),
            a_dump.substr(0, static_cast<std::size_t>(prefix)));

  // C — a fresh stack restored from the blob, run to the same horizon.
  Simulation c = snapshot::restore(spec, blob);
  EXPECT_EQ(c.runtime->stats().restores, 1u);
  // The boundary turnover (++slice_index_ etc.) replays as the first event
  // of the restored run, so before run() the index is still the captured one.
  EXPECT_EQ(c.runtime->sliceIndex(), blob_slice);
  runUntil(c, tc.end);

  const std::string spliced = b_dump.substr(
      0, static_cast<std::size_t>(prefix)) + c.cluster->trace().dump();
  if (spliced != a_dump) {
    // Locate the divergence instead of dumping two multi-MB strings.
    std::size_t i = 0;
    const std::size_t n = std::min(spliced.size(), a_dump.size());
    while (i < n && spliced[i] == a_dump[i]) ++i;
    const std::size_t from = i < 120 ? 0 : i - 120;
    FAIL() << tc.name << ": restored continuation diverges at byte " << i
           << "\n  uninterrupted: ...\n"
           << a_dump.substr(from, 240) << "\n  restored: ...\n"
           << spliced.substr(from, 240);
  }

  expectStatsMatch(a, c);
  EXPECT_EQ(a.workload->dataDigest(), c.workload->dataDigest());
  EXPECT_EQ(a.workload->finishedRanks(), c.workload->finishedRanks());
  if (tc.verify) {
    ASSERT_NE(a.runtime->verifier(), nullptr);
    ASSERT_NE(c.runtime->verifier(), nullptr);
    EXPECT_EQ(a.runtime->verifier()->report().render(),
              c.runtime->verifier()->report().render());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SnapshotDrill,
    ::testing::Values(
        DrillCase{"ring", &snapshot::ckptRing, false, 4, sim::msec(3), 0},
        DrillCase{"ring_verify", &snapshot::ckptRing, true, 4, sim::msec(3),
                  0},
        DrillCase{"soup", &snapshot::ckptSoup, false, 8, sim::msec(12),
                  sim::msec(30)},
        DrillCase{"soup_verify", &snapshot::ckptSoup, true, 8, sim::msec(12),
                  sim::msec(30)},
        DrillCase{"tree", &snapshot::ckptTree, false, 4, sim::msec(3), 0},
        DrillCase{"tree_verify", &snapshot::ckptTree, true, 4, sim::msec(3),
                  0}),
    [](const auto& info) { return std::string(info.param.name); });

// The periodic sink must not perturb the run it observes, end to end.
TEST(SnapshotPolicy, SinkIsPureObservation) {
  ScenarioSpec spec = snapshot::ckptRing();
  spec.mpi.checkpoint_every_slices = 4;

  Simulation plain = snapshot::build(spec);
  plain.cluster->run();

  Simulation observed = snapshot::build(spec);
  std::uint64_t captures = 0;
  observed.runtime->setSnapshotSink([&observed, &captures](std::uint64_t) {
    (void)snapshot::capture(observed);
    ++captures;
  });
  observed.cluster->run();

  EXPECT_GT(captures, 2u);
  EXPECT_EQ(observed.runtime->stats().checkpoints_taken, captures);
  EXPECT_EQ(plain.cluster->trace().dump(), observed.cluster->trace().dump());
  EXPECT_EQ(plain.workload->dataDigest(), observed.workload->dataDigest());
}

// ---------------------------------------------------------------------------
// Branching what-if replay
// ---------------------------------------------------------------------------

TEST(SnapshotBranch, ForkedFaultPlansDivergeAfterTheSnapshot) {
  // One snapshot of the 32-node soup taken *before* node 13's crash lands,
  // forked into two futures: the original plan (13 dies at 6 ms) and a
  // what-if plan with the crash removed.  bcs-verify rides along on both.
  ScenarioSpec spec = snapshot::ckptSoup(/*verify=*/true);
  spec.mpi.checkpoint_every_slices = 8;  // slice 8 boundary = 4.2 ms < 6 ms

  Simulation b = snapshot::build(spec);
  std::vector<std::uint8_t> blob;
  b.runtime->setSnapshotSink([&b, &blob](std::uint64_t) {
    if (blob.empty()) blob = snapshot::capture(b);  // keep the first one
  });
  b.cluster->run(sim::msec(5));
  ASSERT_FALSE(blob.empty());

  Simulation with_crash = snapshot::restore(spec, blob);
  with_crash.cluster->run(sim::msec(30));

  ScenarioSpec what_if = spec;
  what_if.cluster.faults = sim::FaultPlan{};
  what_if.cluster.faults.dropRate(0.05);  // same loss, no crash
  Simulation no_crash = snapshot::restore(what_if, blob);
  no_crash.cluster->run(sim::msec(30));

  EXPECT_EQ(with_crash.runtime->stats().evictions, 1u);
  EXPECT_EQ(no_crash.runtime->stats().evictions, 0u);
  EXPECT_GT(with_crash.runtime->stats().requests_failed, 0u);
  EXPECT_NE(with_crash.cluster->trace().dump(),
            no_crash.cluster->trace().dump());
  EXPECT_NE(with_crash.workload->dataDigest(),
            no_crash.workload->dataDigest());
  // Only the crashed branch sees failures; the what-if branch stays clean
  // (5% drops are absorbed by retransmission, never surfaced as errors).
  EXPECT_EQ(no_crash.runtime->stats().requests_failed, 0u);
  EXPECT_GT(no_crash.runtime->stats().retransmits, 0u);
}

}  // namespace
