// Parallel engine stress tier (ctest label: par).
//
// test_parallel_engine pins the serial≡parallel contract on hand-picked
// configurations; this file sweeps the configuration space instead —
// randomized shard maps × thread counts {2, 3, 4, 8} × barrier window
// sizes — so the shard-local arenas, batched handoff merge and lock-free
// barrier added for the scaling work are exercised across placements they
// were never tuned on.  Every combination must reproduce the serial trace
// digest exactly; one flipped event order anywhere shows up as a diff.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "race/race.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "storm/storm.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::SimTime;
using sim::usec;

const int kThreadCounts[] = {2, 3, 4, 8};

// ---------------------------------------------------------------------------
// Randomized shard maps over sharded fabric traffic
// ---------------------------------------------------------------------------

struct TrafficOut {
  std::string trace;
  std::uint64_t unicasts = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::vector<int> received;
  SimTime end = 0;

  bool operator==(const TrafficOut&) const = default;
};

/// 16 nodes streaming 8 unicasts each to a stride-based partner under an
/// arbitrary node→shard placement.  Same-shard sends use the full endpoint
/// model, cross-shard sends deliver through Engine::handoff — which pair of
/// paths each send takes depends entirely on the map, so the serial
/// reference must run under the *same* map.
TrafficOut runMappedTraffic(const std::vector<sim::ShardId>& map,
                            const sim::ParallelPolicy* policy,
                            race::RaceReport* race_report = nullptr) {
  constexpr int K = 16;
  constexpr int kRounds = 8;

  auto eng = std::make_shared<sim::Engine>();
  auto trace = std::make_shared<sim::Trace>();
  trace->enable();
  auto fabric = std::make_shared<net::Fabric>(
      *eng, net::NetworkParams::qsnet(), K, trace.get());
  fabric->setShardMap(map);
  // Optionally run with the shard-ownership race detector watching: the
  // traffic honours the shard contract, so it must find nothing and must
  // not perturb a byte.
  std::unique_ptr<race::RaceDetector> det;
  if (race_report != nullptr) {
    det = std::make_unique<race::RaceDetector>(*eng, trace.get());
    fabric->setRaceDetector(det.get());
  }

  auto received = std::make_shared<std::vector<int>>(K, 0);
  auto send = std::make_shared<std::function<void(int, int)>>();
  auto* sendp = send.get();  // raw self-reference; `send` outlives the run
  *send = [fabric, trace, eng, received, sendp](int n, int round) {
    if (round == kRounds) return;
    const int dst = (n + 3 + round) % K;
    fabric->unicast(
        n, dst, 128 + 32 * static_cast<std::size_t>(n % 5),
        /*on_delivered=*/
        [trace, eng, received, dst, n, round] {
          ++(*received)[static_cast<std::size_t>(dst)];
          trace->record(eng->now(), sim::TraceCategory::kApp, dst,
                        "got round " + std::to_string(round) + " from n" +
                            std::to_string(n));
        },
        /*on_injected=*/[sendp, n, round] { (*sendp)(n, round + 1); });
  };
  for (int n = 0; n < K; ++n) {
    eng->atOn(map[static_cast<std::size_t>(n)], usec(1) * n,
              [send, n] { (*send)(n, 0); });
  }

  TrafficOut out;
  out.end = policy ? eng->run(*policy) : eng->run();
  out.trace = trace->dump();
  out.unicasts = fabric->stats().unicasts;
  out.executed = eng->executedEvents();
  out.cancelled = eng->cancelledEvents();
  out.received = *received;
  if (det) {
    *race_report = det->finalize(eng->now());
    fabric->setRaceDetector(nullptr);
  }
  return out;
}

TEST(ParallelStress, DetectorOnMappedTrafficIsCleanAndByteIdentical) {
  constexpr int K = 16;
  // A fixed skewed placement: contract-honouring traffic over four shards.
  std::vector<sim::ShardId> map(K);
  for (int n = 0; n < K; ++n) {
    map[static_cast<std::size_t>(n)] = static_cast<sim::ShardId>(n % 4);
  }
  const TrafficOut ref = runMappedTraffic(map, nullptr);

  race::RaceReport serial_rep;
  EXPECT_EQ(runMappedTraffic(map, nullptr, &serial_rep), ref);
  EXPECT_TRUE(serial_rep.clean()) << serial_rep.render();
  EXPECT_GT(serial_rep.accesses_recorded, 100u);  // it really was watching

  race::RaceReport par_ref;
  for (int threads : {2, 4}) {
    sim::ParallelPolicy policy;
    policy.threads = threads;
    policy.window = usec(1);
    policy.clamp_to_hardware = false;
    race::RaceReport rep;
    EXPECT_EQ(runMappedTraffic(map, &policy, &rep), ref)
        << "threads=" << threads;
    EXPECT_TRUE(rep.clean()) << rep.render();
    // Same barrier grid, same logical accesses: the parallel reports match
    // each other exactly, whatever the thread count.
    if (threads == 2) {
      par_ref = rep;
    } else {
      EXPECT_EQ(rep, par_ref);
    }
  }
}

TEST(ParallelStress, RandomShardMapsMatchSerialAcrossThreadsAndWindows) {
  constexpr int K = 16;
  // Window sizes at and below the 1 us bound that keeps every cross-shard
  // delivery past the next barrier (QsNet's minimum end-to-end latency).
  const SimTime kWindows[] = {usec(1), usec(1) / 2, usec(1) / 4};

  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    sim::Rng rng(sim::deriveShardSeed(777, static_cast<std::uint16_t>(seed)));
    // Between 2 and 9 shards; every node draws a shard independently, so
    // maps range from near-balanced to heavily skewed, and some shards may
    // own no node at all.
    const sim::ShardId nshards = static_cast<sim::ShardId>(2 + rng() % 8);
    std::vector<sim::ShardId> map(K);
    for (auto& s : map) s = static_cast<sim::ShardId>(rng() % nshards);

    const TrafficOut ref = runMappedTraffic(map, nullptr);
    ASSERT_EQ(ref.unicasts, 16u * 8u) << "seed=" << seed;

    for (int threads : kThreadCounts) {
      for (SimTime window : kWindows) {
        sim::ParallelPolicy policy;
        policy.threads = threads;
        policy.window = window;
        policy.clamp_to_hardware = false;
        const TrafficOut par = runMappedTraffic(map, &policy);
        EXPECT_EQ(par, ref) << "seed=" << seed << " threads=" << threads
                            << " window=" << window;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The 32-node fault soup across thread counts and barrier coarsening
// ---------------------------------------------------------------------------

struct SoupOut {
  std::string trace;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::size_t unfinished = 0;
  std::vector<std::uint64_t> numbers;

  bool operator==(const SoupOut&) const = default;
};

/// The 32-node fault soup (5% drop + node 13 crash) from
/// test_fault_injection.  All events live on shard 0 — the point is that
/// the parallel driver (arenas, barrier publishes, merges) must degenerate
/// to exact serial behaviour while idle workers spin alongside, including
/// with barriers coarsened to every 2nd or 4th slice.
SoupOut runFaultSoup(int threads, int slices_per_window) {
  const int P = 32;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 20260807;
  ccfg.faults.dropRate(0.05);
  ccfg.faults.crashNode(13, msec(6));
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  storm.setDeathHandler([&](int node) { runtime->notifyNodeFailure(node); });
  storm.startHeartbeats();
  cluster.engine().at(msec(120), [&] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  std::vector<int> completed(P, 0), failed(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> out(1024), in(1024);
    for (int round = 0; round < 8; ++round) {
      const int partner = me ^ (1 + (round % 5));
      if (partner >= P) continue;
      auto sreq = comm.isend(out.data(), out.size(), partner, round);
      auto rreq = comm.irecv(in.data(), in.size(), partner, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      auto& cell = (ss.error == mpi::kSuccess && rs.error == mpi::kSuccess)
                       ? completed
                       : failed;
      ++cell[static_cast<std::size_t>(me)];
    }
  });

  if (threads > 0) {
    auto policy = runtime->parallelPolicy(threads, slices_per_window);
    policy.clamp_to_hardware = false;
    cluster.run(policy);
  } else {
    cluster.run();
  }

  SoupOut out;
  out.trace = cluster.trace().dump();
  out.executed = cluster.engine().executedEvents();
  out.cancelled = cluster.engine().cancelledEvents();
  out.unfinished = cluster.unfinishedProcesses().size();
  out.numbers = {runtime->stats().evictions, runtime->stats().retransmits,
                 runtime->stats().requests_failed,
                 cluster.fabric().stats().drops,
                 cluster.fabric().stats().unicasts,
                 cluster.fabric().stats().payload_bytes};
  for (int v : completed) out.numbers.push_back(static_cast<std::uint64_t>(v));
  for (int v : failed) out.numbers.push_back(static_cast<std::uint64_t>(v));
  return out;
}

TEST(ParallelStress, FaultSoupMatchesSerialAcrossThreadsAndCoarsening) {
  const SoupOut ref = runFaultSoup(0, 1);
  ASSERT_FALSE(ref.trace.empty());
  ASSERT_GT(ref.executed, 1000u);

  for (int threads : kThreadCounts) {
    for (int spw : {1, 2, 4}) {
      const SoupOut par = runFaultSoup(threads, spw);
      EXPECT_EQ(par, ref) << "threads=" << threads
                          << " slices_per_window=" << spw;
    }
  }
}

}  // namespace
